"""Ingestion front-end (repro.service): admission policies, deadlines,
overload degradation — plus the satellite regressions riding along.

The compound-race class pins the subtlest interaction: a transaction
whose commit deadline expires *while* the fault-recovery machinery is
mid-reschedule (crash window + partition on its object's path).  Exactly
one resolution may win — the cancellation — and object conservation
must hold through it on every scheduler.
"""

import json

import pytest

from repro._types import TxnState
from repro.analysis import run_stream, slo_summary, stability_verdict
from repro.chaos import InvariantMonitor
from repro.core import (
    AdaptiveScheduler,
    CoordinatedGreedyScheduler,
    GreedyScheduler,
)
from repro.errors import ReproError, ServiceError, WarmupError, WorkloadError
from repro.faults import CrashWindow, FaultPlan, PartitionWindow
from repro.network import topologies
from repro.obs import CountersProbe
from repro.service import POLICY_NAMES, AdmissionQueue, ServiceConfig
from repro.sim import SimConfig, Simulator, certify_trace
from repro.sim.serialize import trace_to_dict
from repro.sim.transactions import TxnSpec
from repro.sim.transport import parse_latency_dist
from repro.workloads import ManualWorkload, WorkloadSpec


def _open_spec(seed=0, lam=2.0, **knobs):
    return WorkloadSpec.make(
        "poisson-open", seed=seed, lam=lam, objects=8, k=2, **knobs
    )


def _trace_bytes(trace):
    return json.dumps(trace_to_dict(trace), sort_keys=True)


# ----------------------------------------------------------------------
# ServiceConfig validation
# ----------------------------------------------------------------------

class TestServiceConfig:
    def test_unknown_policy_rejected_by_name(self):
        with pytest.raises(ServiceError, match="'drop-everything'"):
            ServiceConfig(policy="drop-everything")

    @pytest.mark.parametrize(
        "bad",
        [
            {"queue_cap": 0},
            {"deadline": 0},
            {"deadline_frac": 1.5},
            {"deadline_frac": -0.1},
            {"ewma_alpha": 0.0},
            {"headroom": 0.0},
            {"backpressure_low": 0.9, "backpressure_high": 0.5},
            {"backpressure_slowdown": 0.0},
        ],
    )
    def test_bad_knobs_rejected(self, bad):
        with pytest.raises(ServiceError):
            ServiceConfig(**bad)

    def test_service_error_is_repro_error(self):
        assert issubclass(ServiceError, ReproError)

    def test_replace_revalidates(self):
        cfg = ServiceConfig(policy="deadline-edf", deadline=20)
        assert cfg.replace(queue_cap=8).queue_cap == 8
        with pytest.raises(ServiceError):
            cfg.replace(queue_cap=-1)

    def test_sim_config_rejects_non_service_value(self):
        with pytest.raises(WorkloadError, match="ServiceConfig"):
            SimConfig(service={"policy": "fifo"})


# ----------------------------------------------------------------------
# AdmissionQueue policies
# ----------------------------------------------------------------------

def _s(seq, deadline=None, priority=0):
    return TxnSpec(0, 0, (seq,), deadline=deadline, priority=priority)


class TestAdmissionQueue:
    def test_fifo_rejects_newcomer_when_full(self):
        q = AdmissionQueue("fifo", 2)
        a, b, c = _s(0), _s(1), _s(2)
        assert q.offer(a, 0) == [] and q.offer(b, 1) == []
        assert q.offer(c, 2) == [(c, "queue-full")]
        assert q.pop() is a and q.pop() is b and q.pop() is None

    def test_lifo_shed_displaces_oldest(self):
        q = AdmissionQueue("lifo-shed", 2)
        a, b, c = _s(0), _s(1), _s(2)
        q.offer(a, 0), q.offer(b, 1)
        assert q.offer(c, 2) == [(a, "displaced")]
        assert q.pop() is c and q.pop() is b  # newest first

    def test_edf_displaces_latest_deadline_for_tighter(self):
        q = AdmissionQueue("deadline-edf", 2)
        loose, mid, tight = _s(0, deadline=50), _s(1, deadline=20), _s(2, deadline=5)
        q.offer(loose, 0), q.offer(mid, 1)
        assert q.offer(tight, 2) == [(loose, "displaced")]
        assert q.pop() is tight and q.pop() is mid

    def test_edf_rejects_looser_newcomer(self):
        q = AdmissionQueue("deadline-edf", 2)
        a, b = _s(0, deadline=5), _s(1, deadline=10)
        q.offer(a, 0), q.offer(b, 1)
        late = _s(2, deadline=99)
        assert q.offer(late, 2) == [(late, "queue-full")]

    def test_edf_no_deadline_sorts_last(self):
        q = AdmissionQueue("deadline-edf", 4)
        nodl, dl = _s(0), _s(1, deadline=30)
        q.offer(nodl, 0), q.offer(dl, 1)
        assert q.pop() is dl and q.pop() is nodl

    def test_priority_class_pops_high_displaces_low(self):
        q = AdmissionQueue("priority-class", 2)
        low, mid = _s(0, priority=0), _s(1, priority=1)
        q.offer(low, 0), q.offer(mid, 1)
        high = _s(2, priority=3)
        assert q.offer(high, 2) == [(low, "displaced")]
        assert q.pop() is high and q.pop() is mid

    def test_shed_expired_removes_past_deadlines(self):
        q = AdmissionQueue("fifo", 8)
        dead, live, nodl = _s(0, deadline=4), _s(1, deadline=9), _s(2)
        for i, s in enumerate((dead, live, nodl)):
            q.offer(s, i)
        assert q.shed_expired(5) == [dead]
        assert len(q) == 2 and q.shed_expired(5) == []

    def test_all_policies_named(self):
        for name in POLICY_NAMES:
            assert len(AdmissionQueue(name, 4)._entries) == 0


# ----------------------------------------------------------------------
# satellite 1: warmup >= horizon is a named error, not an empty window
# ----------------------------------------------------------------------

class TestWarmupError:
    def test_config_rejects_warmup_at_max_time(self):
        with pytest.raises(WarmupError, match="measurement window"):
            SimConfig(max_time=10, warmup=10)

    def test_config_rejects_negative_warmup(self):
        with pytest.raises(WarmupError, match=">= 0"):
            SimConfig(warmup=-1)

    def test_run_rejects_warmup_at_until(self):
        g = topologies.clique(4)
        sim = Simulator(g, GreedyScheduler(), _open_spec(lam=0.2).build(g))
        with pytest.raises(WarmupError, match="horizon=50"):
            sim.run(until=50, warmup=50)

    def test_warmup_error_is_repro_error(self):
        assert issubclass(WarmupError, ReproError)


# ----------------------------------------------------------------------
# satellite 2: stability verdict at the horizon boundary
# ----------------------------------------------------------------------

class TestStabilityBoundary:
    def _overloaded_trace(self):
        g = topologies.grid([4, 4])
        res = run_stream(
            g, GreedyScheduler(), _open_spec(seed=3, lam=2.0),
            until=60, warmup=15,
        )
        return res.trace

    def test_lone_sample_window_carries_no_growth(self):
        # warmup == horizon leaves a single backlog sample; the old
        # first=0.0 fallback read any standing backlog > 2 as growth
        # and flipped the verdict to unstable on the boundary.
        trace = self._overloaded_trace()
        assert trace.meta["open"]["backlog"] > 2
        v = stability_verdict(trace, warmup=60)
        assert v.backlog_first_half == v.backlog_second_half
        assert v.stable

    def test_empty_window_is_stable_not_crash(self):
        v = stability_verdict(self._overloaded_trace(), warmup=61)
        assert v.backlog_first_half == 0.0 and v.stable

    def test_real_growth_still_flagged(self):
        g = topologies.line(16)
        res = run_stream(
            g, GreedyScheduler(), _open_spec(seed=3, lam=2.0),
            until=200, warmup=50,
        )
        assert not stability_verdict(res.trace).stable

    def test_zero_delta_normal_window_stable(self):
        g = topologies.grid([4, 4])
        res = run_stream(
            g, GreedyScheduler(), _open_spec(seed=3, lam=0.2),
            until=200, warmup=50,
        )
        assert stability_verdict(res.trace).stable


# ----------------------------------------------------------------------
# satellite 3: deadline expiry racing fault-driven recovery
# ----------------------------------------------------------------------

SCHEDULERS = [GreedyScheduler, AdaptiveScheduler, CoordinatedGreedyScheduler]


def _race_run(make_sched, *, deadline):
    # Object 0 rests on node 3; its home-bound leg is pinned down by a
    # crash window on the source *and* a partition across the path, so
    # recovery is rescheduling right as the deadline passes.
    g = topologies.line(4)
    wl = ManualWorkload({0: 3}, [TxnSpec(0, 0, (0,), deadline=deadline)])
    plan = FaultPlan(
        seed=1,
        crashes=(CrashWindow(node=3, start=0, end=8),),
        partitions=(PartitionWindow(cut=((1, 2),), start=0, end=10),),
    )
    monitor = InvariantMonitor(stall_k=256)
    cfg = SimConfig(
        faults=plan, probe=monitor, service=ServiceConfig(policy="fifo")
    )
    sim = Simulator(g, make_sched(), wl, config=cfg)
    trace = sim.run()
    return sim, trace, monitor


class TestDeadlineRace:
    @pytest.mark.parametrize("make_sched", SCHEDULERS)
    def test_cancellation_wins_exactly_once(self, make_sched):
        sim, trace, monitor = _race_run(make_sched, deadline=6)
        assert [e.tid for e in trace.expiries] == [0]
        exp = trace.expiries[0]
        assert exp.deadline == 6 and exp.time >= 6
        assert 0 not in trace.txns  # the commit never happened
        assert sim.txns[0].state is TxnState.CANCELLED
        assert certify_trace(g := sim.graph, trace) == []
        assert monitor.checks_run > 0  # conservation was checked live

    @pytest.mark.parametrize("make_sched", SCHEDULERS)
    def test_without_deadline_recovery_commits(self, make_sched):
        # The same faults without the deadline: recovery must win
        # instead, proving the race in the test above is real.
        sim, trace, _ = _race_run(make_sched, deadline=None)
        assert trace.expiries == [] and 0 in trace.txns
        assert certify_trace(sim.graph, trace) == []

    def test_object_reusable_after_cancellation(self):
        # A second transaction wants the object the cancelled one was
        # waiting for; the release path must leave it acquirable.
        g = topologies.line(4)
        wl = ManualWorkload(
            {0: 3},
            [TxnSpec(0, 0, (0,), deadline=6), TxnSpec(12, 1, (0,))],
        )
        plan = FaultPlan(
            seed=1, crashes=(CrashWindow(node=3, start=0, end=8),)
        )
        cfg = SimConfig(faults=plan, service=ServiceConfig(policy="fifo"))
        sim = Simulator(g, GreedyScheduler(), wl, config=cfg)
        trace = sim.run()
        assert [e.tid for e in trace.expiries] == [0]
        assert 1 in trace.txns  # the successor committed
        assert certify_trace(g, trace) == []


# ----------------------------------------------------------------------
# engine integration: overload, conservation, byte identity
# ----------------------------------------------------------------------

class TestServiceEngine:
    def _overload(self, policy="deadline-edf", **service_knobs):
        # lam=5.0 is a true >2x overload for grid:4x4 (lambda* ~ 2); the
        # tight queue makes both sheds and deadline expiries plentiful.
        g = topologies.grid([4, 4])
        service = ServiceConfig(
            policy=policy, queue_cap=16, deadline=40, **service_knobs
        )
        return run_stream(
            g, GreedyScheduler(), _open_spec(seed=7, lam=5.0),
            until=300, warmup=75, config=SimConfig(service=service),
        )

    def test_overload_sheds_and_stays_conserved(self):
        res = self._overload()
        trace = res.trace
        svc = trace.meta["service"]
        assert len(trace.sheds) == svc["shed"] > 0
        open_meta = trace.meta["open"]
        # conservation through cancellation: everything admitted either
        # committed, expired, or is still live at the horizon.
        assert (
            open_meta["generated"]
            == open_meta["committed"] + svc["expired"] + open_meta["backlog"]
        )
        assert (
            svc["submitted"]
            == svc["admitted"] + svc["shed"] + svc["queue_final"]
        )
        assert certify_trace(topologies.grid([4, 4]), trace) == []

    def test_overload_slo_has_service_fields(self):
        slo = self._overload().slo
        assert slo.goodput is not None and slo.goodput > 0
        assert 0 < slo.shed_rate < 1
        assert 0 <= slo.deadline_hit_rate <= 1
        d = slo.to_dict()
        assert "goodput" in d and "p99_admitted" in d

    def test_enabled_run_is_byte_identical(self):
        a = self._overload().trace
        b = self._overload().trace
        assert _trace_bytes(a) == _trace_bytes(b)

    def test_disabled_run_unchanged_and_emits_no_service_keys(self):
        g = topologies.grid([4, 4])
        args = (g, GreedyScheduler(), _open_spec(seed=7, lam=0.5))
        plain = run_stream(*args, until=200, warmup=50).trace
        explicit = run_stream(
            *args, until=200, warmup=50, config=SimConfig(service=None)
        ).trace
        assert _trace_bytes(plain) == _trace_bytes(explicit)
        d = trace_to_dict(plain)
        assert "sheds" not in d and "expiries" not in d
        assert "service" not in plain.meta
        slo = slo_summary(plain, warmup=50).to_dict()
        assert "goodput" not in slo

    def test_counters_probe_matches_meta(self):
        g = topologies.grid([4, 4])
        probe = CountersProbe()
        res = run_stream(
            g, GreedyScheduler(), _open_spec(seed=7, lam=2.0),
            until=200, warmup=50,
            config=SimConfig(
                probe=probe,
                service=ServiceConfig(policy="fifo", queue_cap=16, deadline=30),
            ),
        )
        svc = res.trace.meta["service"]
        c = probe.counters
        assert c["service.submitted"] == svc["submitted"]
        assert c["service.shed"] == svc["shed"] == len(res.trace.sheds)
        assert c["service.expired"] == svc["expired"] == len(res.trace.expiries)
        shed_by_reason = sum(
            v for k, v in c.items() if k.startswith("service.shed.")
        )
        assert shed_by_reason == svc["shed"]

    @pytest.mark.parametrize("policy", POLICY_NAMES)
    def test_every_policy_certifies_under_overload(self, policy):
        res = self._overload(policy=policy)
        assert certify_trace(topologies.grid([4, 4]), res.trace) == []

    def test_priority_classes_protected_by_policy(self):
        g = topologies.grid([4, 4])
        spec = _open_spec(seed=7, lam=2.0, priority_classes=3)
        # the workload really draws all three classes ...
        wl = spec.build(g)
        drawn = {s.priority for _, s in zip(range(200), wl.arrival_stream())}
        assert drawn == {0, 1, 2}
        res = run_stream(
            g, GreedyScheduler(), spec, until=200, warmup=50,
            config=SimConfig(
                service=ServiceConfig(policy="priority-class", queue_cap=16)
            ),
        )
        # ... and under overload the policy sheds the lowest class far
        # more often than the highest.
        sheds = [s.priority for s in res.trace.sheds]
        assert sheds
        assert sheds.count(0) > sheds.count(2)


# ----------------------------------------------------------------------
# long-tail latency distributions
# ----------------------------------------------------------------------

class TestLatencyDist:
    def test_parse_accepts_both_families(self):
        m = parse_latency_dist("lognormal:0.5:0.8:6")
        assert m.kind == "lognormal"
        m = parse_latency_dist("empirical:0,1,1,4")
        assert m.kind == "empirical"

    @pytest.mark.parametrize(
        "bad", ["lognormal:0.5", "empirical:", "uniform:1:2", "empirical:-1"]
    )
    def test_parse_rejects_malformed(self, bad):
        with pytest.raises(WorkloadError, match="latency_dist"):
            parse_latency_dist(bad)

    def test_config_requires_fault_plan(self):
        with pytest.raises(WorkloadError, match="requires faults"):
            SimConfig(latency_dist="lognormal:1:1")

    def _run(self, latency_seed):
        g = topologies.ring(8)
        cfg = SimConfig(
            faults=FaultPlan(seed=0),
            latency_dist="lognormal:0.5:0.8:6",
            latency_seed=latency_seed,
        )
        return run_stream(
            g, GreedyScheduler(), _open_spec(seed=2, lam=0.2),
            until=150, warmup=30, config=cfg,
        ).trace

    def test_deterministic_and_seed_sensitive(self):
        a, b = self._run(0), self._run(0)
        assert _trace_bytes(a) == _trace_bytes(b)
        other = self._run(99)
        assert _trace_bytes(a) != _trace_bytes(other)

    def test_delays_recorded_and_certified(self):
        trace = self._run(0)
        delays = [f for f in trace.faults if f.kind == "net-delay"]
        assert delays and all(f.extra >= 1 for f in delays)
        assert certify_trace(topologies.ring(8), trace) == []
