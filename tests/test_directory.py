"""Tests for the Arrow spanning-tree directory."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import run_experiment
from repro.core import DistributedBucketScheduler
from repro.directory import ArrowDirectory, SpanningTree
from repro.errors import GraphError, SchedulingError
from repro.network import topologies
from repro.offline import ColoringBatchScheduler
from repro.workloads import OnlineWorkload
from repro.sim import SimConfig


class TestSpanningTree:
    def test_line_tree_paths(self):
        g = topologies.line(8)
        t = SpanningTree(g, root=0)
        assert t.path(2, 6) == [2, 3, 4, 5, 6]
        assert t.path_weight(2, 6) == 4
        assert t.path(5, 5) == [5]

    def test_grid_tree_is_spanning(self):
        g = topologies.grid([4, 4])
        t = SpanningTree(g, root=0)
        roots = [v for v in g.nodes() if t.parent[v] is None]
        assert roots == [0]
        # every node reaches the root by parents
        for v in g.nodes():
            steps, u = 0, v
            while t.parent[u] is not None:
                u = t.parent[u]
                steps += 1
                assert steps <= g.num_nodes
            assert u == 0

    def test_tree_path_endpoints(self):
        g = topologies.cluster_graph(3, 3, gamma=4)
        t = SpanningTree(g, root=0)
        for u in (1, 4, 8):
            for w in (2, 6):
                p = t.path(u, w)
                assert p[0] == u and p[-1] == w
                # consecutive hops are tree edges
                for a, b in zip(p, p[1:]):
                    assert t.parent[a] == b or t.parent[b] == a

    def test_stretch_at_least_one(self):
        g = topologies.ring(10)
        t = SpanningTree(g, root=0)
        for u in g.nodes():
            for w in g.nodes():
                if u != w:
                    assert t.stretch(u, w) >= 1.0


class TestArrowDirectory:
    def test_register_and_find(self):
        g = topologies.line(8)
        d = ArrowDirectory(g)
        d.register(0, 5)
        assert d.home(0) == 5
        path = d.find(0, 0)
        assert path[0] == 0 and path[-1] == 5

    def test_duplicate_register_rejected(self):
        g = topologies.line(4)
        d = ArrowDirectory(g)
        d.register(0, 1)
        with pytest.raises(GraphError):
            d.register(0, 2)

    def test_move_updates_home(self):
        g = topologies.grid([3, 3])
        d = ArrowDirectory(g)
        d.register(0, 0)
        d.move(0, 8)
        assert d.home(0) == 8
        assert d.find(0, 2)[-1] == 8

    def test_move_counts_maintenance(self):
        g = topologies.line(8)
        d = ArrowDirectory(g)
        d.register(0, 0)
        d.move(0, 7)
        assert d.maintenance_messages == 7
        d.move(0, 7)  # no-op move
        assert d.maintenance_messages == 7

    def test_find_latency(self):
        g = topologies.line(8)
        d = ArrowDirectory(g)
        d.register(0, 6)
        assert d.find_latency(0, 1) == 5

    @given(
        st.lists(st.integers(0, 11), min_size=1, max_size=15),
        st.integers(0, 11),
    )
    @settings(max_examples=60, deadline=None)
    def test_invariant_under_random_moves(self, moves, probe_from):
        """After any move sequence, finds from anywhere terminate at the
        current home."""
        g = topologies.grid([3, 4])
        d = ArrowDirectory(g)
        d.register(0, moves[0])
        for m in moves[1:]:
            d.move(0, m)
        path = d.find(0, probe_from)
        assert path[-1] == moves[-1]
        assert path[0] == probe_from


class TestArrowDiscovery:
    def test_invalid_mode_rejected(self):
        with pytest.raises(SchedulingError):
            DistributedBucketScheduler(ColoringBatchScheduler(), discovery="dns")

    @pytest.mark.parametrize(
        "graph",
        [topologies.line(10), topologies.grid([3, 4]), topologies.cluster_graph(2, 4, gamma=5)],
        ids=lambda g: g.name,
    )
    def test_arrow_discovery_feasible(self, graph):
        wl = OnlineWorkload.bernoulli(graph, num_objects=4, k=2, rate=0.05, horizon=25, seed=6)
        sched = DistributedBucketScheduler(ColoringBatchScheduler(), seed=0, discovery="arrow")
        res = run_experiment(graph, sched, wl, config=SimConfig(object_speed_den=2))
        assert res.trace.num_txns == wl.num_txns
        assert sched.directory is not None
        assert sched.directory.find_messages + sched.directory.maintenance_messages > 0

    def test_arrow_costs_more_messages_than_probe(self):
        g = topologies.line(16)
        mk = lambda: OnlineWorkload.bernoulli(g, num_objects=5, k=2, rate=0.05, horizon=40, seed=7)
        probe = run_experiment(
            g, DistributedBucketScheduler(ColoringBatchScheduler(), seed=0), mk(),
            config=SimConfig(object_speed_den=2),
        )
        arrow = run_experiment(
            g,
            DistributedBucketScheduler(ColoringBatchScheduler(), seed=0, discovery="arrow"),
            mk(),
            config=SimConfig(object_speed_den=2),
        )
        assert arrow.metrics.messages_sent >= probe.metrics.messages_sent
