"""Tests for bottleneck prediction."""

import pytest

from repro.analysis.bottlenecks import (
    _spearman,
    edge_betweenness,
    measured_edge_load,
    predicted_vs_measured,
)
from repro.core import GreedyScheduler
from repro.network import topologies
from repro.sim.engine import Simulator
from repro.workloads import OnlineWorkload, hotspot_workload


class TestSpearman:
    def test_perfect_positive(self):
        assert _spearman([1, 2, 3], [10, 20, 30]) == pytest.approx(1.0)

    def test_perfect_negative(self):
        assert _spearman([1, 2, 3], [30, 20, 10]) == pytest.approx(-1.0)

    def test_ties_handled(self):
        rho = _spearman([1, 1, 2], [5, 5, 9])
        assert rho == pytest.approx(1.0)

    def test_constant_input(self):
        assert _spearman([1, 1, 1], [1, 2, 3]) == 0.0


class TestBetweenness:
    def test_star_center_edges_dominate(self):
        g = topologies.star_graph(4, 3)
        bt = edge_betweenness(g)
        center_edges = {k: v for k, v in bt.items() if 0 in k}
        other_edges = {k: v for k, v in bt.items() if 0 not in k}
        assert min(center_edges.values()) > 0
        assert max(center_edges.values()) >= max(other_edges.values())

    def test_cluster_bridges_dominate(self):
        g = topologies.cluster_graph(3, 4, gamma=6)
        bt = edge_betweenness(g)
        bridges = g.layout.bridges
        bridge_edges = [v for (a, b), v in bt.items() if a in bridges and b in bridges]
        intra = [v for (a, b), v in bt.items() if not (a in bridges and b in bridges)]
        assert min(bridge_edges) > max(intra)


class TestMeasuredLoad:
    def run_hop(self, g, wl):
        return Simulator(g, GreedyScheduler(), wl, hop_motion=True).run()

    def test_hop_trace_counts_exact_edges(self):
        g = topologies.line(6)
        trace = self.run_hop(g, hotspot_workload(g, seed=0))
        load = measured_edge_load(g, trace)
        assert sum(load.values()) == len(trace.legs)

    def test_leg_trace_expanded(self):
        g = topologies.line(6)
        wl = hotspot_workload(g, seed=0)
        trace = Simulator(g, GreedyScheduler(), wl).run()
        load = measured_edge_load(g, trace)
        # expanded path hops equal the total travel distance
        assert sum(load.values()) == trace.total_object_travel()

    def test_prediction_correlates_on_star(self):
        g = topologies.star_graph(4, 3)
        wl = OnlineWorkload.bernoulli(g, num_objects=6, k=2, rate=0.08, horizon=50, seed=2)
        trace = self.run_hop(g, wl)
        rho, table = predicted_vs_measured(g, trace)
        assert rho > 0.4  # structure predicts load
        assert table[0][2] >= table[-1][2]  # sorted by measured load
