"""Tests for bursty arrivals and partial-run stepping."""

import pytest

from repro.analysis import run_experiment
from repro.core import BucketScheduler, GreedyScheduler
from repro.errors import SchedulingError, WorkloadError
from repro.network import topologies
from repro.offline import ColoringBatchScheduler
from repro.sim.engine import Simulator
from repro.sim.transactions import TxnSpec
from repro.sim.validate import certify_trace
from repro.workloads import ManualWorkload, OnlineWorkload


class TestBursty:
    def test_generates_and_runs(self):
        g = topologies.grid([4, 4])
        wl = OnlineWorkload.bursty(g, num_objects=6, k=2, horizon=120, seed=0)
        assert wl.num_txns > 0
        res = run_experiment(g, GreedyScheduler(), wl)
        assert res.trace.num_txns == wl.num_txns

    def test_burstiness_visible(self):
        """Index of dispersion (variance/mean of per-step arrival counts)
        far above 1: Poisson-like arrivals sit at ~1, bursts push it up."""
        import numpy as np

        g = topologies.clique(16)
        horizon = 200
        wl = OnlineWorkload.bursty(
            g, num_objects=6, k=1, horizon=horizon, seed=1,
            burst_rate=0.4, idle_rate=0.005,
        )
        counts = np.zeros(horizon)
        for s in wl.arrivals():
            counts[s.gen_time] += 1
        dispersion = counts.var() / max(1e-9, counts.mean())
        assert dispersion > 2.0, f"arrivals not bursty (dispersion={dispersion:.2f})"

    def test_deterministic(self):
        g = topologies.line(8)
        a = OnlineWorkload.bursty(g, 4, 1, horizon=60, seed=5)
        b = OnlineWorkload.bursty(g, 4, 1, horizon=60, seed=5)
        assert a.arrivals() == b.arrivals()

    def test_invalid_params(self):
        g = topologies.line(4)
        with pytest.raises(WorkloadError):
            OnlineWorkload.bursty(g, 2, 1, horizon=10, burst_rate=2.0)
        with pytest.raises(WorkloadError):
            OnlineWorkload.bursty(g, 2, 1, horizon=10, mean_burst=0)

    def test_bucket_handles_bursts(self):
        g = topologies.line(16)
        wl = OnlineWorkload.bursty(g, num_objects=6, k=2, horizon=100, seed=3)
        res = run_experiment(g, BucketScheduler(ColoringBatchScheduler()), wl)
        assert res.trace.num_txns == wl.num_txns


class TestRunUntil:
    def test_partial_then_drain(self):
        g = topologies.line(10)
        specs = [TxnSpec(0, 3, (0,)), TxnSpec(30, 7, (0,))]
        wl = ManualWorkload({0: 0}, specs)
        sim = Simulator(g, GreedyScheduler(), wl)
        sim.run_until(10)
        assert 0 in sim.trace.txns  # first txn committed
        assert len(sim.trace.txns) == 1  # second not yet generated
        trace = sim.run()
        assert len(trace.txns) == 2
        certify_trace(g, trace)

    def test_inspection_between_calls(self):
        g = topologies.line(10)
        wl = ManualWorkload({0: 0}, [TxnSpec(5, 8, (0,))])
        sim = Simulator(g, GreedyScheduler(), wl)
        sim.run_until(4)
        assert not sim.live  # not generated yet
        sim.run_until(5)
        # generated and scheduled at t=5; object now in flight
        assert sim.objects[0].in_transit or sim.objects[0].location == 8
        sim.run()
        assert len(sim.trace.txns) == 1

    def test_past_until_rejected(self):
        g = topologies.line(4)
        sim = Simulator(g, GreedyScheduler(), ManualWorkload({}, []))
        sim.run_until(10)
        with pytest.raises(SchedulingError):
            sim.run_until(3)

    def test_equivalent_to_single_run(self):
        g = topologies.grid([3, 3])
        mk = lambda: OnlineWorkload.bernoulli(g, num_objects=4, k=2, rate=0.08, horizon=25, seed=4)
        whole = Simulator(g, GreedyScheduler(), mk()).run()
        sim = Simulator(g, GreedyScheduler(), mk())
        for t in (5, 10, 15, 20):
            sim.run_until(t)
        stepped = sim.run()
        assert {t: r.exec_time for t, r in whole.txns.items()} == {
            t: r.exec_time for t, r in stepped.txns.items()
        }
        assert whole.legs == stepped.legs
