"""Tests for the offline batch schedulers (the algorithm A substrate)."""

import pytest

from repro.analysis.lower_bounds import batch_lower_bound
from repro.network import topologies
from repro.offline import (
    ClusterBatchScheduler,
    ColoringBatchScheduler,
    LineBatchScheduler,
    StandaloneView,
    StarBatchScheduler,
    check_suffix_property,
)
from repro.sim.transactions import Transaction
from repro.workloads import BatchWorkload


def batch_txns(workload):
    """Materialise a batch workload into Transaction objects."""
    return [
        Transaction(i, spec.home, frozenset(spec.objects), spec.gen_time)
        for i, spec in enumerate(workload.arrivals())
    ]


def plan_is_valid(graph, placement, txns, plan, speed=1):
    """Schedule-level feasibility: per object, consecutive users leave
    enough travel time (the certifier's 'too-fast' rule)."""
    by_obj = {}
    for txn in txns:
        for oid in txn.objects:
            by_obj.setdefault(oid, []).append(txn)
    for oid, users in by_obj.items():
        users = sorted(users, key=lambda x: (plan[x.tid], x.tid))
        pos = placement[oid]
        t = 0
        for txn in users:
            need = t + speed * graph.distance(pos, txn.home)
            if plan[txn.tid] < need:
                return False
            pos, t = txn.home, plan[txn.tid]
    return True


SCHEDULERS = [
    ColoringBatchScheduler("arrival"),
    ColoringBatchScheduler("degree"),
    ColoringBatchScheduler("home"),
    LineBatchScheduler(),
    ClusterBatchScheduler(),
    StarBatchScheduler(),
]


class TestFeasibility:
    @pytest.mark.parametrize("sched", SCHEDULERS, ids=lambda s: f"{s.name}-{getattr(s, 'order_by', '')}")
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_plans_feasible_on_line(self, sched, seed):
        g = topologies.line(12)
        wl = BatchWorkload.uniform(g, num_objects=5, k=2, seed=seed)
        txns = batch_txns(wl)
        view = StandaloneView(g, wl.initial_objects())
        plan = sched.plan(view, txns)
        assert plan_is_valid(g, wl.initial_objects(), txns, plan)

    def test_plan_respects_floor(self):
        g = topologies.line(8)
        wl = BatchWorkload.uniform(g, num_objects=3, k=1, seed=0)
        txns = batch_txns(wl)
        view = StandaloneView(g, wl.initial_objects())
        plan = ColoringBatchScheduler().plan(view, txns, floor=17)
        assert min(plan.values()) >= 17

    def test_empty_plan(self):
        g = topologies.line(4)
        view = StandaloneView(g, {})
        assert ColoringBatchScheduler().plan(view, []) == {}
        assert ColoringBatchScheduler().completion_time(view, []) == 0

    def test_half_speed_plans_feasible(self):
        g = topologies.line(10)
        wl = BatchWorkload.uniform(g, num_objects=4, k=2, seed=4)
        txns = batch_txns(wl)
        view = StandaloneView(g, wl.initial_objects(), object_speed_den=2)
        plan = LineBatchScheduler().plan(view, txns)
        assert plan_is_valid(g, wl.initial_objects(), txns, plan, speed=2)


class TestQuality:
    def test_line_sweep_beats_or_matches_arrival_order_on_hotspot(self):
        g = topologies.line(16)
        placement = {0: 0}
        txns = [Transaction(i, i, frozenset({0}), 0) for i in range(16)]
        view = StandaloneView(g, placement)
        sweep = LineBatchScheduler().plan(view, txns)
        arbitrary = ColoringBatchScheduler("arrival").plan(
            view, [txns[i] for i in (7, 2, 14, 0, 9, 4, 12, 1, 8, 3, 15, 5, 13, 6, 10, 11)]
        )
        assert max(sweep.values()) <= max(arbitrary.values())
        # sweep is asymptotically optimal: one pass over the line
        lb = batch_lower_bound(g, placement, txns)
        assert max(sweep.values()) <= 2 * lb + 2

    def test_line_auto_picks_cheaper_direction(self):
        g = topologies.line(10)
        placement = {0: 9}  # object at the right end: rtl sweep is cheaper
        txns = [Transaction(i, i, frozenset({0}), 0) for i in range(10)]
        view = StandaloneView(g, placement)
        auto = LineBatchScheduler().plan(view, txns)
        ltr = LineBatchScheduler("ltr").plan(view, txns)
        rtl = LineBatchScheduler("rtl").plan(view, txns)
        assert max(auto.values()) == min(max(ltr.values()), max(rtl.values()))

    def test_cluster_bands_cliques(self):
        g = topologies.cluster_graph(3, 4, gamma=8)
        placement = {0: 0}
        txns = [Transaction(i, i, frozenset({0}), 0) for i in range(12)]
        view = StandaloneView(g, placement)
        plan = ClusterBatchScheduler().plan(view, txns)
        # bridges crossed only twice: makespan ~ 2*gamma + 12 rather than
        # ~12*gamma for an interleaved order
        assert max(plan.values()) <= 2 * 8 + 3 * 12

    def test_star_bands_rays(self):
        g = topologies.star_graph(3, 4)
        placement = {0: 0}
        txns = [Transaction(i, i + 1, frozenset({0}), 0) for i in range(12)]
        view = StandaloneView(g, placement)
        plan = StarBatchScheduler().plan(view, txns)
        lb = batch_lower_bound(g, placement, txns)
        assert max(plan.values()) <= 4 * lb


class TestSuffixProperty:
    @pytest.mark.parametrize("seed", [0, 1])
    def test_line_scheduler_suffixes(self, seed):
        g = topologies.line(10)
        wl = BatchWorkload.uniform(g, num_objects=4, k=2, seed=seed)
        txns = batch_txns(wl)
        view = StandaloneView(g, wl.initial_objects())
        violations = check_suffix_property(LineBatchScheduler("ltr"), view, txns, slack=2.0)
        assert violations == []

    def test_coloring_scheduler_suffixes(self):
        g = topologies.clique(8)
        wl = BatchWorkload.uniform(g, num_objects=4, k=2, seed=3)
        txns = batch_txns(wl)
        view = StandaloneView(g, wl.initial_objects())
        violations = check_suffix_property(ColoringBatchScheduler(), view, txns, slack=2.0)
        assert violations == []

    def test_explicit_plan_checked(self):
        from repro.offline import enforce_suffix_property

        g = topologies.clique(6)
        wl = BatchWorkload.uniform(g, num_objects=3, k=1, seed=5)
        txns = batch_txns(wl)
        view = StandaloneView(g, wl.initial_objects())
        sched = ColoringBatchScheduler()
        plan = sched.plan(view, txns)
        # inflate the tail: pad the last transaction far out
        order = sorted(txns, key=lambda x: (plan[x.tid], x.tid))
        bad = dict(plan)
        bad[order[-1].tid] += 500
        assert check_suffix_property(sched, view, txns, slack=2.0, plan=bad)

    def test_enforcement_repairs_padded_scheduler(self):
        """A scheduler that wastes time only on large batches violates the
        suffix property (small suffixes re-planned alone are much faster);
        the Section IV-A repair loop re-plans suffixes until clean."""
        from repro.offline import enforce_suffix_property

        class PadsBigBatches(ColoringBatchScheduler):
            def plan(self, view, txns, *, floor=1):
                base = super().plan(view, txns, floor=floor)
                if len(txns) >= 4:
                    return {tid: 6 * c for tid, c in base.items()}
                return base

        g = topologies.line(10)
        wl = BatchWorkload.uniform(g, num_objects=3, k=1, seed=7)
        txns = batch_txns(wl)
        view = StandaloneView(g, wl.initial_objects())
        sched = PadsBigBatches()
        raw = sched.plan(view, txns)
        assert check_suffix_property(sched, view, txns, slack=2.0, plan=raw)
        repaired = enforce_suffix_property(sched, view, txns, slack=2.0)
        assert repaired != raw  # the repair loop actually ran
        assert check_suffix_property(sched, view, txns, slack=2.0, plan=repaired) == []

    def test_enforcement_noop_on_clean_plans(self):
        from repro.offline import enforce_suffix_property

        g = topologies.line(10)
        wl = BatchWorkload.uniform(g, num_objects=4, k=2, seed=1)
        txns = batch_txns(wl)
        view = StandaloneView(g, wl.initial_objects())
        sched = LineBatchScheduler("ltr")
        assert enforce_suffix_property(sched, view, txns, slack=2.0) == sched.plan(view, txns)
