"""Tests for the grid crossing instance (TSP-vs-execution-time gap)."""

import pytest

from repro.analysis import run_experiment
from repro.baselines import TspTourScheduler
from repro.core import GreedyScheduler
from repro.errors import WorkloadError
from repro.workloads import crossing_lower_bound, grid_crossing_workload


class TestConstruction:
    def test_structure(self):
        g, wl = grid_crossing_workload(4)
        assert g.num_nodes == 16
        specs = wl.arrivals()
        assert len(specs) == 16
        placement = wl.initial_objects()
        assert len(placement) == 8  # 4 row + 4 column objects
        # txn at (i,j) requests row i and column j objects
        for s in specs:
            i, j = divmod(s.home, 4)
            assert set(s.objects) == {i, 4 + j}

    def test_row_objects_on_first_column(self):
        g, wl = grid_crossing_workload(3)
        placement = wl.initial_objects()
        for i in range(3):
            assert placement[i] == i * 3
        for j in range(3):
            assert placement[3 + j] == j

    def test_too_small(self):
        with pytest.raises(WorkloadError):
            grid_crossing_workload(1)

    def test_shuffle_changes_order_not_content(self):
        _, a = grid_crossing_workload(4)
        _, b = grid_crossing_workload(4, shuffle_seed=1)
        assert sorted(s.home for s in a.arrivals()) == sorted(s.home for s in b.arrivals())
        assert [s.home for s in a.arrivals()] != [s.home for s in b.arrivals()]


class TestSeparation:
    def test_both_schedulers_feasible(self):
        g, wl = grid_crossing_workload(4, shuffle_seed=0)
        res = run_experiment(g, GreedyScheduler(), wl)
        assert res.trace.num_txns == 16
        g, wl = grid_crossing_workload(4, shuffle_seed=0)
        res2 = run_experiment(g, TspTourScheduler(), wl)
        assert res2.trace.num_txns == 16

    def test_lower_bound_valid(self):
        g, wl = grid_crossing_workload(5)
        res = run_experiment(g, GreedyScheduler(), wl)
        assert res.makespan >= crossing_lower_bound(5)

    def test_schedulers_within_small_factor_of_lb(self):
        """A single interlock level does not separate the schedulers (the
        paper's Ω-gap needs a deep recursive amplification); both must
        stay within a small factor of the certified lower bound."""
        for side in (4, 6):
            lb = crossing_lower_bound(side)
            g, wl = grid_crossing_workload(side, shuffle_seed=2)
            greedy = run_experiment(g, GreedyScheduler(), wl)
            g, wl = grid_crossing_workload(side, shuffle_seed=2)
            tsp = run_experiment(g, TspTourScheduler(), wl)
            assert greedy.makespan <= 8 * lb
            assert tsp.makespan <= 8 * lb
