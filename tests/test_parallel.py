"""Deterministic parallel runtime tests (repro.parallel).

1. **pmap contract** — ``pmap(fn, specs, jobs=N)`` returns exactly
   ``[fn(s) for s in specs]`` for any worker count, merged by spec
   index; ``jobs=0`` resolves to the host core count and negative
   worker counts are rejected.
2. **Failure semantics** — the lowest-index failing spec's exception is
   raised (matching serial short-circuit order), chained to a
   :class:`ParallelError` carrying the index and remote traceback;
   exceptions that would corrupt under pickling (e.g.
   ``InfeasibleScheduleError``) are transported as text instead.
3. **Clean shutdown** — a ``KeyboardInterrupt`` in a worker re-raises in
   the parent with the pool torn down; a worker that dies outright
   surfaces as a context-rich ``ParallelError``, never a hang.
4. **End-to-end determinism** — ``jobs=4`` output is identical to
   ``jobs=1`` for :func:`replicate`, :func:`run_grid`, a chaos
   ``run_sweep`` with shrinking (including artifact bytes), and the CLI
   ``compare`` / ``chaos sweep`` golden stdout.
5. **Cut-cache LRU** (satellite) — evicting ``Graph._cut_sssp`` entries
   past ``CUT_CACHE_MAX`` never changes any distance answer.
"""

import json
import os
import re
from dataclasses import replace

import pytest

from repro.analysis import replicate, run_experiment, run_grid
from repro.chaos import episode_spec, run_sweep
from repro.cli import main
from repro.core import GreedyScheduler
from repro.errors import InfeasibleScheduleError, ParallelError
from repro.faults import CrashWindow, FaultPlan, PartitionWindow
from repro.network import topologies
from repro.parallel import WorkerPool, pmap, resolve_jobs
from repro.workloads import OnlineWorkload


# ----------------------------------------------------------------------
# module-level worker functions (picklable under any start method)
# ----------------------------------------------------------------------

def _square(x):
    return x * x


def _fail_on_even(x):
    if x % 2 == 0:
        raise ValueError(f"even spec {x}")
    return x


def _interrupt_on_five(x):
    if x == 5:
        raise KeyboardInterrupt
    return x


def _die_on_three(x):
    if x == 3:
        os._exit(3)
    return x


def _raise_infeasible(x):
    raise InfeasibleScheduleError([f"txn {x} missed object 1"])


def _replicate_case(seed):
    g = topologies.clique(8)
    wl = OnlineWorkload.bernoulli(
        g, num_objects=4, k=2, rate=0.2, horizon=40, seed=seed
    )
    res = run_experiment(g, GreedyScheduler(), wl)
    return {"makespan": res.makespan, "ratio": res.competitive_ratio}


def _grid_case(case):
    num_nodes, seed = case
    g = topologies.clique(num_nodes)
    wl = OnlineWorkload.bernoulli(
        g, num_objects=4, k=2, rate=0.2, horizon=30, seed=seed
    )
    res = run_experiment(g, GreedyScheduler(), wl)
    return {"makespan": res.makespan, "txns": res.metrics.num_txns}


def planted_spec():
    """Same planted crash+partition episode as tests/test_chaos.py: node 2
    crashes while edge (2, 3) is cut, amid decoy windows and noise."""
    spec = episode_spec(0, seed=3, topology="ring:10", horizon=30)
    plan = FaultPlan(
        seed=3,
        drop_prob=0.1,
        delay_prob=0.1,
        max_delay=3,
        crashes=(CrashWindow(2, 5, 15), CrashWindow(4, 6, 12)),
        partitions=(
            PartitionWindow(((2, 3),), 8, 18),
            PartitionWindow(((5, 6),), 4, 10),
        ),
    )
    return replace(spec, plan=plan, planted={"node": 2, "edge": (2, 3)})


def canon(value) -> str:
    return json.dumps(value, sort_keys=True, default=repr)


# ----------------------------------------------------------------------
# pmap contract
# ----------------------------------------------------------------------

class TestPmapContract:
    def test_parallel_identical_to_serial(self):
        specs = list(range(37))
        expected = [_square(s) for s in specs]
        assert pmap(_square, specs, jobs=1) == expected
        assert pmap(_square, specs, jobs=4) == expected

    def test_small_chunks_still_ordered(self):
        specs = list(range(23))
        assert pmap(_square, specs, jobs=4, chunk=1) == [s * s for s in specs]

    def test_empty_specs(self):
        assert pmap(_square, [], jobs=4) == []

    def test_unordered_is_same_multiset(self):
        specs = list(range(20))
        out = pmap(_square, specs, jobs=4, ordered=False, chunk=2)
        assert sorted(out) == [s * s for s in specs]

    def test_resolve_jobs(self):
        assert resolve_jobs(None) == 1
        assert resolve_jobs(1) == 1
        assert resolve_jobs(3) == 3
        assert resolve_jobs(0) == (os.cpu_count() or 1)
        with pytest.raises(ParallelError, match="jobs must be >= 0"):
            resolve_jobs(-2)

    def test_pool_reuse_across_maps(self):
        with WorkerPool(_square, jobs=2, chunk=3) as pool:
            assert pool.map(list(range(10))) == [s * s for s in range(10)]
            assert pool.map(list(range(5))) == [s * s for s in range(5)]


# ----------------------------------------------------------------------
# failure semantics
# ----------------------------------------------------------------------

class TestFailureSemantics:
    def test_lowest_index_failure_wins(self):
        # Failing specs sit at indices 2 and 4; serial order raises the
        # one at index 2 even though chunk=1 lets index 4 finish first.
        specs = [1, 3, 2, 5, 4]
        with pytest.raises(ValueError, match="even spec 2") as excinfo:
            pmap(_fail_on_even, specs, jobs=4, chunk=1)
        cause = excinfo.value.__cause__
        assert isinstance(cause, ParallelError)
        assert cause.index == 2
        assert cause.cause_type == "ValueError"
        assert "even spec 2" in cause.remote_traceback

    def test_serial_and_parallel_raise_same_message(self):
        specs = [1, 3, 2, 5, 4]
        with pytest.raises(ValueError) as serial:
            pmap(_fail_on_even, specs, jobs=1)
        with pytest.raises(ValueError) as par:
            pmap(_fail_on_even, specs, jobs=4, chunk=1)
        assert str(serial.value) == str(par.value)

    def test_unfaithful_pickle_transported_as_text(self):
        # InfeasibleScheduleError(msg) reconstruction corrupts .violations,
        # so it must arrive as a ParallelError, not a mangled re-raise.
        with pytest.raises(ParallelError) as excinfo:
            pmap(_raise_infeasible, [7], jobs=2)
        err = excinfo.value
        assert err.index == 0
        assert err.cause_type == "InfeasibleScheduleError"
        assert "txn 7 missed object 1" in str(err)


# ----------------------------------------------------------------------
# clean shutdown
# ----------------------------------------------------------------------

class TestCleanShutdown:
    def test_keyboard_interrupt_in_worker_reraises(self):
        pool = WorkerPool(_interrupt_on_five, jobs=2, chunk=1)
        with pytest.raises(KeyboardInterrupt):
            pool.map(list(range(8)))
        assert pool._executor is None  # pool torn down, not leaked
        pool.close()  # idempotent after interrupt

    def test_worker_hard_crash_is_context_rich(self):
        pool = WorkerPool(_die_on_three, jobs=2, chunk=1)
        with pytest.raises(ParallelError) as excinfo:
            pool.map(list(range(6)))
        msg = str(excinfo.value)
        assert "worker process died" in msg
        assert "jobs=2" in msg
        assert "_die_on_three" in msg
        assert pool._executor is None
        pool.close()


# ----------------------------------------------------------------------
# end-to-end determinism: jobs=4 == jobs=1
# ----------------------------------------------------------------------

class TestEndToEndDeterminism:
    def test_replicate_jobs4_identical(self):
        seeds = list(range(6))
        serial = replicate(_replicate_case, seeds)
        par = replicate(_replicate_case, seeds, jobs=4)
        assert serial == par  # Aggregate is a frozen dataclass: deep ==
        assert canon({k: v.values for k, v in serial.items()}) == canon(
            {k: v.values for k, v in par.items()}
        )

    def test_run_grid_jobs4_identical(self):
        cases = [(n, seed) for n in (6, 8) for seed in (0, 1, 2)]
        assert run_grid(_grid_case, cases) == run_grid(_grid_case, cases, jobs=4)

    def test_sweep_with_shrink_identical_including_artifacts(self, tmp_path):
        # One planted violation (shrunk + archived) and one healthy decoy.
        specs = [
            planted_spec(),
            episode_spec(1, seed=3, topology="ring:10", horizon=30),
        ]
        serial_dir = tmp_path / "serial"
        par_dir = tmp_path / "par"
        serial = run_sweep(
            len(specs), specs=specs, shrink=True, artifact_dir=str(serial_dir)
        )
        par = run_sweep(
            len(specs), specs=specs, shrink=True, artifact_dir=str(par_dir),
            jobs=4,
        )
        assert canon([r.to_dict() for r in serial.episodes]) == canon(
            [r.to_dict() for r in par.episodes]
        )
        serial_arts = sorted(p.name for p in serial_dir.iterdir())
        par_arts = sorted(p.name for p in par_dir.iterdir())
        assert serial_arts == par_arts and serial_arts  # same files, >= 1
        for name in serial_arts:
            assert (serial_dir / name).read_bytes() == (par_dir / name).read_bytes()

    def test_cli_compare_golden_stdout(self, capsys):
        argv = [
            "compare", "--topology", "clique:8", "--workload", "batch",
            "--objects", "4", "--schedulers", "greedy,fifo",
        ]

        def run(jobs):
            assert main(argv + ["--jobs", jobs]) == 0
            return capsys.readouterr().out

        # Wall-clock seconds legitimately differ run to run; mask the
        # trailing seconds column before demanding byte identity.
        def mask_seconds(out):
            return "\n".join(
                re.sub(r"[0-9.]+$", "S", line) for line in out.splitlines()
            )

        serial = run("1")
        par = run("4")
        assert "seconds" in serial.splitlines()[1]
        assert mask_seconds(serial) == mask_seconds(par)

    def test_cli_compare_json_identical_modulo_seconds(self, capsys):
        argv = [
            "compare", "--topology", "clique:8", "--workload", "batch",
            "--objects", "4", "--schedulers", "greedy,fifo", "--json",
        ]

        def run(jobs):
            assert main(argv + ["--jobs", jobs]) == 0
            rows = json.loads(capsys.readouterr().out)
            for row in rows:
                assert row.pop("seconds") >= 0
            return rows

        assert run("1") == run("4")

    def test_cli_chaos_sweep_jobs_identical(self, capsys):
        argv = [
            "chaos", "sweep", "--episodes", "6", "--seed", "7",
            "--topology", "ring:8", "--horizon", "20", "--json",
        ]

        def run(jobs):
            assert main(argv + ["--jobs", jobs]) == 0
            return capsys.readouterr().out

        assert run("1") == run("2")


# ----------------------------------------------------------------------
# cut-cache LRU eviction (satellite: bounded memory, unchanged answers)
# ----------------------------------------------------------------------

class TestCutCacheLRU:
    def test_eviction_never_changes_distances(self):
        g = topologies.ring(10)
        fresh = topologies.ring(10)  # uncached oracle, rebuilt per query
        g.CUT_CACHE_MAX = 8  # instance override: force heavy eviction
        cuts = [frozenset({(i, i + 1)}) for i in range(9)]
        cuts.append(frozenset({(0, 9)}))

        expected = {}
        for cut in cuts:
            for src in (0, 3, 7):
                expected[(cut, src)] = g.distance_avoiding(src, 5, cut)
        assert len(g._cut_sssp) <= 8  # far fewer than the 30 queries

        # Re-query everything (most entries were evicted and recompute);
        # answers must match both the first pass and a cold graph.
        for (cut, src), want in expected.items():
            assert g.distance_avoiding(src, 5, cut) == want
            assert fresh.distance_avoiding(src, 5, cut) == want
            assert len(g._cut_sssp) <= 8

        # Plain distances (the unbounded _dist cache) are untouched.
        for src in range(10):
            assert g.distance(src, 5) == fresh.distance(src, 5)

    def test_lru_keeps_hot_entries(self):
        g = topologies.ring(12)
        g.CUT_CACHE_MAX = 4
        hot = frozenset({(0, 1)})
        g.distance_avoiding(0, 6, hot)
        for i in range(1, 11):
            g.distance_avoiding(0, 6, frozenset({(i, i + 1)}))
            g.distance_avoiding(0, 6, hot)  # touch: must survive eviction
            assert (hot, 0) in g._cut_sssp
        assert len(g._cut_sssp) <= 4
