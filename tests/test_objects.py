"""Unit tests for mobile shared objects."""

import pytest

from repro.errors import SchedulingError
from repro.network import topologies
from repro.sim.objects import QueueEntry, SharedObject


class TestTimeToReach:
    def test_at_rest(self):
        g = topologies.line(10)
        obj = SharedObject(0, location=2)
        assert obj.time_to_reach(g, 7, now=100) == 5
        assert obj.time_to_reach(g, 2, now=100) == 0

    def test_at_rest_half_speed(self):
        g = topologies.line(10)
        obj = SharedObject(0, location=2, speed_den=2)
        assert obj.time_to_reach(g, 7, now=0) == 10

    def test_in_transit_artificial_node(self):
        g = topologies.line(10)
        obj = SharedObject(0, location=0, in_transit=True, dest=5, arrive_time=12)
        # at t=10: 2 steps left to node 5, then distance to 8 is 3
        assert obj.time_to_reach(g, 8, now=10) == 2 + 3

    def test_in_transit_back_toward_origin(self):
        g = topologies.line(10)
        obj = SharedObject(0, location=0, in_transit=True, dest=5, arrive_time=12)
        # the artificial-node model charges going through the destination
        assert obj.time_to_reach(g, 3, now=10) == 2 + 2


class TestQueue:
    def test_enqueue_sorted(self):
        obj = SharedObject(0, location=0)
        obj.enqueue(10, exec_time=30)
        obj.enqueue(11, exec_time=10)
        obj.enqueue(12, exec_time=20)
        assert [e.tid for e in obj.queue] == [11, 12, 10]

    def test_ties_broken_by_tid(self):
        obj = SharedObject(0, location=0)
        obj.enqueue(5, exec_time=10)
        obj.enqueue(3, exec_time=10)
        assert [e.tid for e in obj.queue] == [3, 5]

    def test_pop_head_order_enforced(self):
        obj = SharedObject(0, location=0)
        obj.enqueue(1, exec_time=5)
        obj.enqueue(2, exec_time=9)
        with pytest.raises(SchedulingError):
            obj.pop_head(2)
        obj.pop_head(1)
        assert obj.next_requester() == QueueEntry(9, 2)

    def test_pop_empty_queue(self):
        obj = SharedObject(0, location=0)
        with pytest.raises(SchedulingError):
            obj.pop_head(1)
