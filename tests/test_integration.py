"""Integration tests: every scheduler x every topology, certified."""

import pytest

from repro.analysis import run_experiment
from repro.baselines import FifoSerialScheduler, TspTourScheduler
from repro.core import BucketScheduler, DistributedBucketScheduler, GreedyScheduler
from repro.network import topologies
from repro.offline import (
    ClusterBatchScheduler,
    ColoringBatchScheduler,
    LineBatchScheduler,
    StarBatchScheduler,
)
from repro.workloads import BatchWorkload, ClosedLoopWorkload, OnlineWorkload
from repro.sim import SimConfig

TOPOLOGIES = [
    lambda: topologies.clique(10),
    lambda: topologies.line(14),
    lambda: topologies.ring(12),
    lambda: topologies.grid([3, 4]),
    lambda: topologies.hypercube(3),
    lambda: topologies.butterfly(2),
    lambda: topologies.cluster_graph(3, 3, gamma=4),
    lambda: topologies.star_graph(3, 3),
    lambda: topologies.random_geometric(12, 0.4, seed=0),
]


def scheduler_matrix():
    from repro.core import AdaptiveScheduler, CoordinatedGreedyScheduler, WindowedBatchScheduler

    return [
        ("greedy", lambda: GreedyScheduler(), 1),
        ("greedy-degree", lambda: GreedyScheduler(order="degree"), 1),
        ("bucket", lambda: BucketScheduler(ColoringBatchScheduler()), 1),
        ("windowed", lambda: WindowedBatchScheduler(ColoringBatchScheduler(), window=8), 1),
        ("adaptive", lambda: AdaptiveScheduler(), 1),
        ("coordinated", lambda: CoordinatedGreedyScheduler(), 1),
        ("fifo", lambda: FifoSerialScheduler(), 1),
        ("tsp", lambda: TspTourScheduler(), 1),
        ("distributed", lambda: DistributedBucketScheduler(ColoringBatchScheduler(), seed=0), 2),
    ]


class TestAllPairsBatch:
    @pytest.mark.parametrize("topo", TOPOLOGIES, ids=lambda f: f().name)
    @pytest.mark.parametrize("name,factory,speed", scheduler_matrix(), ids=lambda x: x if isinstance(x, str) else "")
    def test_batch_certified(self, topo, name, factory, speed):
        g = topo()
        wl = BatchWorkload.uniform(g, num_objects=5, k=2, seed=13)
        res = run_experiment(g, factory(), wl, config=SimConfig(object_speed_den=speed))
        assert res.trace.num_txns == g.num_nodes
        assert res.metrics.makespan >= 1


class TestAllPairsOnline:
    @pytest.mark.parametrize("name,factory,speed", scheduler_matrix(), ids=lambda x: x if isinstance(x, str) else "")
    def test_online_grid_certified(self, name, factory, speed):
        g = topologies.grid([3, 4])
        wl = OnlineWorkload.bernoulli(g, num_objects=5, k=2, rate=0.06, horizon=30, seed=21)
        res = run_experiment(g, factory(), wl, config=SimConfig(object_speed_den=speed))
        assert res.trace.num_txns == wl.num_txns


class TestTopologyAwareOffline:
    def test_line_bucket(self):
        g = topologies.line(20)
        wl = OnlineWorkload.bernoulli(g, num_objects=6, k=2, rate=0.05, horizon=40, seed=3)
        res = run_experiment(g, BucketScheduler(LineBatchScheduler()), wl)
        assert res.trace.num_txns == wl.num_txns

    def test_cluster_bucket(self):
        g = topologies.cluster_graph(3, 4, gamma=6)
        wl = OnlineWorkload.bernoulli(g, num_objects=6, k=2, rate=0.05, horizon=40, seed=4)
        res = run_experiment(g, BucketScheduler(ClusterBatchScheduler()), wl)
        assert res.trace.num_txns == wl.num_txns

    def test_star_bucket(self):
        g = topologies.star_graph(4, 3)
        wl = OnlineWorkload.bernoulli(g, num_objects=6, k=2, rate=0.05, horizon=40, seed=5)
        res = run_experiment(g, BucketScheduler(StarBatchScheduler()), wl)
        assert res.trace.num_txns == wl.num_txns


class TestClosedLoopAcrossSchedulers:
    @pytest.mark.parametrize("name,factory,speed", scheduler_matrix(), ids=lambda x: x if isinstance(x, str) else "")
    def test_closed_loop(self, name, factory, speed):
        g = topologies.clique(6)
        wl = ClosedLoopWorkload(g, num_objects=4, k=2, rounds=3, seed=8)
        res = run_experiment(g, factory(), wl, config=SimConfig(object_speed_den=speed))
        assert res.trace.num_txns == 18


class TestDeterminism:
    @pytest.mark.parametrize(
        "factory,speed",
        [
            (lambda: GreedyScheduler(), 1),
            (lambda: BucketScheduler(ColoringBatchScheduler()), 1),
            (lambda: DistributedBucketScheduler(ColoringBatchScheduler(), seed=3), 2),
        ],
        ids=["greedy", "bucket", "distributed"],
    )
    def test_same_seed_same_trace(self, factory, speed):
        g = topologies.grid([3, 3])

        def one():
            wl = OnlineWorkload.bernoulli(g, num_objects=4, k=2, rate=0.08, horizon=20, seed=17)
            return run_experiment(g, factory(), wl, config=SimConfig(object_speed_den=speed))

        a, b = one(), one()
        assert {t: r.exec_time for t, r in a.trace.txns.items()} == {
            t: r.exec_time for t, r in b.trace.txns.items()
        }
        assert a.trace.legs == b.trace.legs
