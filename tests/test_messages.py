"""Unit tests for the message router."""

from repro.network import topologies
from repro.sim.messages import MessageRouter


class TestRouter:
    def test_latency_is_distance(self):
        g = topologies.line(10)
        r = MessageRouter(g)
        got = []
        r.send(0, 0, 7, "x", None, lambda now, m: got.append((now, m)))
        assert r.next_delivery_time() == 7
        r.deliver_due(7)
        assert got[0][0] == 7
        assert got[0][1].deliver_at == 7

    def test_self_message_takes_one_step(self):
        g = topologies.line(4)
        r = MessageRouter(g)
        r.send(5, 2, 2, "x", None, lambda now, m: None)
        assert r.next_delivery_time() == 6

    def test_extra_delay(self):
        g = topologies.line(10)
        r = MessageRouter(g)
        r.send(0, 0, 3, "x", None, lambda now, m: None, extra_delay=4)
        assert r.next_delivery_time() == 7

    def test_delivery_order_and_stats(self):
        g = topologies.line(10)
        r = MessageRouter(g)
        seen = []
        r.send(0, 0, 5, "a", "A", lambda now, m: seen.append(m.payload))
        r.send(0, 0, 2, "b", "B", lambda now, m: seen.append(m.payload))
        r.deliver_due(10)
        assert seen == ["B", "A"]
        assert r.sent_count == 2
        assert r.total_distance == 7
        assert r.pending == 0

    def test_callback_can_send_more(self):
        g = topologies.line(10)
        r = MessageRouter(g)
        seen = []

        def hop(now, msg):
            seen.append((now, msg.dst))
            if msg.dst < 6:
                r.send(now, msg.dst, msg.dst + 2, "hop", None, hop)

        r.send(0, 0, 2, "hop", None, hop)
        t = 0
        while r.pending:
            t = r.next_delivery_time()
            r.deliver_due(t)
        assert seen == [(2, 2), (4, 4), (6, 6)]
