"""Tests for the application-style workloads (bank, vacation, inventory)."""

import pytest

from repro.analysis import run_experiment
from repro.core import BucketScheduler, GreedyScheduler
from repro.errors import WorkloadError
from repro.network import topologies
from repro.offline import ColoringBatchScheduler
from repro.workloads import bank_workload, inventory_workload, vacation_workload


class TestBank:
    def test_structure(self):
        g = topologies.grid([4, 4])
        wl = bank_workload(g, num_accounts=10, num_transfers=50, seed=0)
        specs = wl.arrivals()
        assert len(specs) == 50
        for s in specs:
            if s.objects:  # transfer
                assert len(s.objects) == 2
                assert len(set(s.objects)) == 2
                assert not s.reads
            else:  # audit
                assert len(s.reads) == 4

    def test_audit_fraction(self):
        g = topologies.clique(8)
        wl = bank_workload(g, num_transfers=300, audit_fraction=0.5, seed=1)
        audits = sum(1 for s in wl.arrivals() if s.reads)
        assert 100 < audits < 200

    def test_too_few_accounts(self):
        with pytest.raises(WorkloadError):
            bank_workload(topologies.clique(4), num_accounts=1)

    def test_runs_feasibly(self):
        g = topologies.grid([4, 4])
        wl = bank_workload(g, num_accounts=12, num_transfers=60, seed=2)
        res = run_experiment(g, GreedyScheduler(), wl)
        assert res.trace.num_txns == 60

    def test_skew_concentrates_contention(self):
        g = topologies.clique(8)
        hot = bank_workload(g, num_transfers=200, skew=2.0, seed=3)
        cold = bank_workload(g, num_transfers=200, skew=0.0, seed=3)

        def top_share(wl):
            counts = {}
            for s in wl.arrivals():
                for o in (*s.objects, *s.reads):
                    counts[o] = counts.get(o, 0) + 1
            total = sum(counts.values())
            return max(counts.values()) / total

        assert top_share(hot) > top_share(cold)


class TestVacation:
    def test_bookings_touch_all_families(self):
        g = topologies.grid([3, 4])
        wl = vacation_workload(g, num_bookings=40, seed=0)
        for s in wl.arrivals():
            objs = (*s.objects, *s.reads)
            assert len(objs) == 3
            families = [o // 12 for o in sorted(objs)]
            assert families == [0, 1, 2]

    def test_query_fraction(self):
        g = topologies.clique(6)
        wl = vacation_workload(g, num_bookings=200, query_fraction=0.5, seed=4)
        queries = sum(1 for s in wl.arrivals() if s.reads)
        assert 60 < queries < 140

    def test_runs_feasibly_with_bucket(self):
        g = topologies.cluster_graph(3, 4, gamma=6)
        wl = vacation_workload(g, num_bookings=50, seed=1)
        res = run_experiment(g, BucketScheduler(ColoringBatchScheduler()), wl)
        assert res.trace.num_txns == 50


class TestInventory:
    def test_orders_and_restocks(self):
        g = topologies.grid([4, 4])
        wl = inventory_workload(g, num_orders=120, restock_fraction=0.2, seed=0)
        restocks = [s for s in wl.arrivals() if s.objects == (0,) and not s.reads]
        orders = [s for s in wl.arrivals() if s.reads]
        assert restocks and orders
        assert len(restocks) + len(orders) == 120
        for s in orders:
            assert s.reads == (0,)  # price list read
            assert 1 <= s.objects[0]  # stock shard write

    def test_locality_prefers_near_shards(self):
        g = topologies.line(24)
        wl = inventory_workload(g, num_shards=6, num_orders=400, locality=1.0, seed=5)
        placement = wl.initial_objects()
        near = 0
        total = 0
        for s in wl.arrivals():
            if not s.reads:
                continue
            total += 1
            shard_pos = placement[s.objects[0]]
            dists = sorted(g.distance(s.home, placement[o]) for o in range(1, 7))
            if g.distance(s.home, shard_pos) == dists[0]:
                near += 1
        assert near == total  # full locality: always the nearest shard

    def test_invalid_locality(self):
        with pytest.raises(WorkloadError):
            inventory_workload(topologies.clique(4), locality=1.5)

    def test_runs_feasibly(self):
        g = topologies.star_graph(4, 4)
        wl = inventory_workload(g, num_orders=60, seed=6)
        res = run_experiment(g, GreedyScheduler(), wl)
        assert res.trace.num_txns == 60
