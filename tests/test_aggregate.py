"""Tests for multi-seed replication and aggregation."""

import pytest

from repro.analysis import Aggregate, replicate


class TestAggregate:
    def test_basic_stats(self):
        a = Aggregate("x", (1.0, 2.0, 3.0))
        assert a.n == 3
        assert a.mean == 2.0
        assert a.min == 1.0 and a.max == 3.0
        assert a.std > 0

    def test_single_value(self):
        a = Aggregate("x", (5.0,))
        assert a.std == 0.0
        assert a.ci() == (5.0, 5.0)

    def test_empty(self):
        a = Aggregate("x", ())
        assert a.mean == 0.0
        assert a.ci() == (0.0, 0.0)

    def test_ci_contains_mean(self):
        a = Aggregate("x", tuple(float(i) for i in range(20)))
        lo, hi = a.ci()
        assert lo <= a.mean <= hi
        assert lo < hi

    def test_ci_deterministic(self):
        a = Aggregate("x", (1.0, 4.0, 2.0, 8.0))
        assert a.ci(seed=3) == a.ci(seed=3)

    def test_summary_row_shape(self):
        a = Aggregate("makespan", (10.0, 12.0))
        row = a.summary_row()
        assert row[0] == "makespan"
        assert len(row) == 7


class TestReplicate:
    def test_collects_all_metrics(self):
        out = replicate(lambda seed: {"a": seed, "b": seed * 2}, seeds=[1, 2, 3])
        assert out["a"].values == (1.0, 2.0, 3.0)
        assert out["b"].mean == 4.0

    def test_inconsistent_keys_rejected(self):
        from repro.errors import ReproError

        def exp(seed):
            return {"a": 1} if seed == 0 else {"a": 1, "b": 1}

        with pytest.raises(ReproError) as err:
            replicate(exp, seeds=[0, 7])
        msg = str(err.value)
        assert "seed 7" in msg
        assert "extra ['b']" in msg
        assert "missing []" in msg

    def test_inconsistent_keys_names_missing(self):
        from repro.errors import ReproError

        def exp(seed):
            return {"a": 1, "b": 1} if seed == 0 else {"b": 1}

        with pytest.raises(ReproError, match=r"seed 1.*missing \['a'\]"):
            replicate(exp, seeds=[0, 1])

    def test_real_experiment(self):
        from repro.analysis import run_experiment
        from repro.core import GreedyScheduler
        from repro.network import topologies
        from repro.workloads import BatchWorkload

        g = topologies.clique(8)

        def exp(seed):
            wl = BatchWorkload.uniform(g, num_objects=4, k=2, seed=seed)
            res = run_experiment(g, GreedyScheduler(), wl)
            return {"makespan": res.makespan, "ratio": res.competitive_ratio}

        agg = replicate(exp, seeds=range(5))
        assert agg["makespan"].n == 5
        assert agg["ratio"].mean >= 1.0
