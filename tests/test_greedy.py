"""Tests for Algorithm 1 (online greedy scheduler) and its theorems."""

import pytest

from repro.analysis import run_experiment
from repro.core import GreedyScheduler
from repro.network import topologies
from repro.sim.transactions import TxnSpec
from repro.workloads import (
    BatchWorkload,
    ClosedLoopWorkload,
    ManualWorkload,
    OnlineWorkload,
    hotspot_workload,
)


class TestBasics:
    def test_independent_txns_run_concurrently(self):
        # disjoint objects, all local: every txn executes at t+1
        g = topologies.clique(6)
        specs = [TxnSpec(0, i, (i,)) for i in range(6)]
        wl = ManualWorkload({i: i for i in range(6)}, specs)
        res = run_experiment(g, GreedyScheduler(), wl)
        assert res.makespan == 1
        assert all(r.exec_time == 1 for r in res.trace.txns.values())

    def test_conflicting_txns_serialize(self):
        g = topologies.clique(4)
        specs = [TxnSpec(0, i, (0,)) for i in range(4)]
        wl = ManualWorkload({0: 0}, specs)
        res = run_experiment(g, GreedyScheduler(), wl)
        times = sorted(r.exec_time for r in res.trace.txns.values())
        assert len(set(times)) == 4  # pairwise distinct (distance 1 apart)
        assert res.makespan <= 4

    def test_order_degree_option(self):
        g = topologies.clique(8)
        wl = BatchWorkload.uniform(g, num_objects=4, k=2, seed=3)
        res = run_experiment(g, GreedyScheduler(order="degree"), wl)
        assert res.trace.num_txns == 8

    def test_invalid_order_rejected(self):
        with pytest.raises(ValueError):
            GreedyScheduler(order="nope")

    def test_feasible_under_online_arrivals(self):
        g = topologies.grid([4, 4])
        wl = OnlineWorkload.bernoulli(g, num_objects=6, k=2, rate=0.08, horizon=30, seed=9)
        res = run_experiment(g, GreedyScheduler(), wl)  # certify=True
        assert res.trace.num_txns == wl.num_txns


class TestTheorem1:
    """Each transaction executes by gen + (floor-shifted) 2*Gamma' - Delta'."""

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_bound_holds_on_grid(self, seed):
        g = topologies.grid([3, 3])
        wl = OnlineWorkload.bernoulli(g, num_objects=5, k=2, rate=0.1, horizon=25, seed=seed)
        sched = GreedyScheduler()
        res = run_experiment(g, sched, wl)
        recorded = {tid: (color, bound) for tid, color, bound in sched.color_log}
        for rec in res.trace.txns.values():
            color, bound = recorded[rec.tid]
            assert rec.exec_time - rec.schedule_time == color
            assert color <= bound

    def test_colors_match_latency_when_scheduled_at_gen(self):
        g = topologies.clique(8)
        wl = BatchWorkload.uniform(g, num_objects=4, k=2, seed=5)
        sched = GreedyScheduler()
        res = run_experiment(g, sched, wl)
        for rec in res.trace.txns.values():
            assert rec.schedule_time == rec.gen_time  # greedy is immediate
            assert rec.latency >= 1


class TestTheorem2Uniform:
    def test_colors_are_multiples_of_beta(self):
        g = topologies.hypercube(3)
        beta = 3  # log2(8)
        wl = BatchWorkload.uniform(g, num_objects=4, k=2, seed=7)
        sched = GreedyScheduler(uniform_beta=beta)
        res = run_experiment(g, sched, wl)
        for tid, color, bound in sched.color_log:
            assert color % beta == 0
            assert color <= bound

    def test_uniform_beta_1_on_clique(self):
        g = topologies.clique(8)
        wl = hotspot_workload(g, seed=1)
        sched = GreedyScheduler(uniform_beta=1)
        res = run_experiment(g, sched, wl)
        # hot object visits all 8 nodes at unit distance: makespan <= 8 + 1
        assert res.makespan <= 9


class TestTheorem3Clique:
    """O(k) competitiveness on the clique."""

    @pytest.mark.parametrize("k", [1, 2, 4])
    def test_ratio_scales_with_k_not_n(self, k):
        ratios = []
        for n in (8, 16):
            g = topologies.clique(n)
            wl = ClosedLoopWorkload(g, num_objects=n, k=k, rounds=3, seed=42)
            res = run_experiment(g, GreedyScheduler(uniform_beta=1), wl)
            ratios.append(res.competitive_ratio)
        # The constant behind O(k): generous cap, but independent of n.
        for r in ratios:
            assert r <= 6 * k + 3

    def test_hotspot_ratio_near_one(self):
        g = topologies.clique(16)
        wl = hotspot_workload(g, seed=0)
        res = run_experiment(g, GreedyScheduler(uniform_beta=1), wl)
        # all txns need object 0; lower bound is n moves, greedy pays ~n.
        assert res.makespan_ratio <= 2.0


class TestHypercubeBound:
    def test_ratio_within_klogn(self):
        g = topologies.hypercube(4)  # n=16, beta=4
        wl = ClosedLoopWorkload(g, num_objects=8, k=2, rounds=2, seed=11)
        res = run_experiment(g, GreedyScheduler(uniform_beta=4), wl)
        k, logn = 2, 4
        assert res.competitive_ratio <= 6 * k * logn
