"""Unit tests for dependency graphs H_t / H'_t."""

from repro.core.base import OnlineScheduler
from repro.core.dependency import (
    _constraints_scan,
    build_extended_dependency_graph,
    constraints_for,
    holder_key,
)
from repro.network import topologies
from repro.sim.engine import Simulator
from repro.sim.transactions import TxnSpec
from repro.workloads import ManualWorkload, hotspot_workload


class Recorder(OnlineScheduler):
    """Captures constraints at scheduling time, then schedules greedily."""

    def __init__(self):
        super().__init__()
        self.snapshots = {}

    def on_step(self, t, new_txns):
        from repro.core.coloring import min_valid_color

        for txn in new_txns:
            cons = constraints_for(self.sim, txn, now=t)
            self.snapshots[txn.tid] = cons
            self.sim.commit_schedule(txn, t + min_valid_color(cons))


def test_holder_key_states():
    wl = ManualWorkload({0: 2}, [TxnSpec(0, 5, (0,))])
    sched = Recorder()
    sim = Simulator(topologies.line(8), sched, wl)
    assert holder_key(sim, 0) == ("free", 0)
    sim.run()
    assert holder_key(sim, 0) == ("txn", 0)


def test_free_object_constraint_is_distance():
    wl = ManualWorkload({0: 2}, [TxnSpec(0, 5, (0,))])
    sched = Recorder()
    Simulator(topologies.line(8), sched, wl).run()
    # single constraint: holder color 0, weight = distance 3
    assert sched.snapshots[0] == [(0, 3)]


def test_scheduled_conflict_constraint():
    # txn A at node 1 (t=0), txn B at node 6 (t=0): B sees A's color.
    wl = ManualWorkload({0: 1}, [TxnSpec(0, 1, (0,)), TxnSpec(0, 6, (0,))])
    sched = Recorder()
    Simulator(topologies.line(8), sched, wl).run()
    cons_b = dict()  # colors -> weights
    for color, w in sched.snapshots[1]:
        cons_b[color] = w
    # A got color 1 (object local), B sees (1, dist=5) plus holder (0, 5)
    assert cons_b[1] == 5
    assert cons_b[0] == 5


def test_in_transit_artificial_constraint():
    # A at node 4 takes the object from node 0; B arrives at node 0 while
    # the object is in transit toward node 4.
    specs = [TxnSpec(0, 4, (0,)), TxnSpec(2, 0, (0,))]
    wl = ManualWorkload({0: 0}, specs)
    sched = Recorder()
    Simulator(topologies.line(8), sched, wl).run()
    cons_b = sched.snapshots[1]
    # B at t=2: A scheduled at 4 -> color 2, weight 4.  Holder in transit,
    # 2 steps left to node 4, then 4 back to node 0 -> bound 6.
    assert (2, 4) in cons_b
    assert (0, 6) in cons_b


def test_duplicate_conflicts_merged():
    # two shared objects with the same opponent -> single constraint
    specs = [TxnSpec(0, 1, (0, 1)), TxnSpec(0, 6, (0, 1))]
    wl = ManualWorkload({0: 1, 1: 1}, specs)
    sched = Recorder()
    Simulator(topologies.line(8), sched, wl).run()
    schedule_cons = [c for c in sched.snapshots[1] if c[0] != 0]
    assert len(schedule_cons) == 1


def test_extended_graph_structure():
    specs = [TxnSpec(0, 1, (0,)), TxnSpec(0, 6, (0,)), TxnSpec(0, 3, (1,))]
    wl = ManualWorkload({0: 1, 1: 7}, specs)

    class Snapshot(OnlineScheduler):
        def __init__(self):
            super().__init__()
            self.h = None

        def on_step(self, t, new_txns):
            if self.h is None:
                self.h = build_extended_dependency_graph(self.sim, now=t)
            for txn in new_txns:
                from repro.core.coloring import min_valid_color

                self.sim.commit_schedule(
                    txn, t + min_valid_color(constraints_for(self.sim, txn, now=t))
                )

    sched = Snapshot()
    Simulator(topologies.line(8), sched, wl).run()
    h = sched.h
    # txn 0 and 1 conflict (object 0); txn 2 is connected only to object 1's
    # free holder.
    assert (("txn", 0), ("txn", 1)) in h.edges
    assert h.edges[(("txn", 0), ("txn", 1))] == 5
    assert h.degree(("txn", 2)) == 1
    assert h.weighted_degree(("txn", 2)) == 4  # |7-3|
    # Theorem 1 bound for txn 0: edges to txn1 (5) and holder (0) -> the
    # holder edge weight is 0 (object local), so Gamma=5, Delta counts both.
    assert h.theorem1_bound(("txn", 0)) >= h.weighted_degree(("txn", 0))


class _DifferentialScheduler(OnlineScheduler):
    """Greedy scheduler that, every step, checks the incremental tracker
    against both reference paths: constraint multisets vs the full scan
    (for every live transaction) and ``snapshot()`` vs the full H'_t
    rebuild."""

    def __init__(self):
        super().__init__()
        self.steps_checked = 0

    def on_step(self, t, new_txns):
        from repro.core.coloring import min_valid_color

        sim = self.sim
        for txn in sim.live.values():
            fast = sorted(sim.deps.constraints_for(txn, now=t))
            slow = sorted(_constraints_scan(sim, txn, now=t))
            assert fast == slow, (t, txn.tid, fast, slow)
        snap = sim.deps.snapshot(now=t)
        full = build_extended_dependency_graph(sim, now=t)
        assert snap.nodes == full.nodes, (t, snap.nodes ^ full.nodes)
        assert snap.edges == full.edges, t
        self.steps_checked += 1
        for txn in new_txns:
            sim.commit_schedule(txn, t + min_valid_color(constraints_for(sim, txn, now=t)))


def _run_differential(graph, workload, **kw):
    sched = _DifferentialScheduler()
    trace = Simulator(graph, sched, workload, **kw).run()
    assert sched.steps_checked > 0
    return trace


def test_tracker_matches_scan_line_mixed_reads():
    specs = [
        TxnSpec(0, 1, (0,), reads=(2,)),
        TxnSpec(0, 6, (0, 1)),
        TxnSpec(1, 3, (1,), reads=(0,)),
        TxnSpec(2, 7, (2,), reads=(1,)),
        TxnSpec(4, 0, (0, 2)),
        TxnSpec(6, 5, (), reads=(0, 1, 2)),
    ]
    wl = ManualWorkload({0: 1, 1: 7, 2: 4}, specs)
    _run_differential(topologies.line(8), wl)


def test_tracker_matches_scan_hotspot_grid():
    g = topologies.grid([4, 4])
    wl = hotspot_workload(g, num_cold_objects=4, k_cold=1, seed=11)
    trace = _run_differential(g, wl)
    assert len(trace.txns) == g.num_nodes


def test_tracker_matches_scan_half_speed_cluster():
    g = topologies.cluster_graph(3, 3, 5)
    wl = hotspot_workload(g, num_cold_objects=2, k_cold=1, seed=3)
    _run_differential(g, wl, object_speed_den=2)


def test_tracker_empty_after_quiescence():
    g = topologies.ring(6)
    wl = hotspot_workload(g, seed=0)
    sched = _DifferentialScheduler()
    sim = Simulator(g, sched, wl)
    sim.run()
    assert all(not nbrs for nbrs in sim.deps.adj.values())
