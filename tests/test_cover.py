"""Tests for padded decompositions and the hierarchical sparse cover."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cover import build_sparse_cover, greedy_ball_partition, padded_decomposition
from repro.errors import CoverError
from repro.network import topologies
from repro.sim import SimConfig


class TestPaddedDecomposition:
    def test_is_partition(self):
        g = topologies.grid([5, 5])
        rng = np.random.default_rng(0)
        clusters, padded, centers = padded_decomposition(g, radius=6, pad=1, rng=rng)
        seen = set()
        for cl in clusters:
            assert not (seen & cl)
            seen |= cl
        assert seen == set(g.nodes())

    def test_padded_nodes_really_padded(self):
        g = topologies.grid([5, 5])
        rng = np.random.default_rng(1)
        clusters, padded, _ = padded_decomposition(g, radius=8, pad=2, rng=rng)
        index = {}
        for i, cl in enumerate(clusters):
            for v in cl:
                index[v] = i
        for v in padded:
            for u in g.ball(v, 2):
                assert index[u] == index[v]

    def test_cluster_radius_bounded(self):
        g = topologies.line(32)
        rng = np.random.default_rng(2)
        radius = 8
        clusters, _, centers = padded_decomposition(g, radius=radius, pad=1, rng=rng)
        for i, cl in enumerate(clusters):
            c = centers[i]
            assert all(g.distance(c, v) <= radius for v in cl)

    def test_zero_pad_everyone_padded(self):
        g = topologies.clique(10)
        rng = np.random.default_rng(3)
        _, padded, _ = padded_decomposition(g, radius=4, pad=0, rng=rng)
        assert padded == set(g.nodes())


class TestGreedyBallPartition:
    def test_is_partition(self):
        g = topologies.grid([5, 5])
        rng = np.random.default_rng(0)
        clusters, padded, centers = greedy_ball_partition(g, radius=4, pad=1, rng=rng)
        seen = set()
        for cl in clusters:
            assert not (seen & cl)
            seen |= cl
        assert seen == set(g.nodes())

    def test_strong_diameter(self):
        """Each cluster is connected and its induced-subgraph diameter is
        at most 2 * radius."""
        from repro.network.graph import Graph

        g = topologies.grid([5, 5])
        rng = np.random.default_rng(1)
        radius = 3
        clusters, _, centers = greedy_ball_partition(g, radius=radius, pad=1, rng=rng)
        for i, cl in enumerate(clusters):
            # distance from center within the induced subgraph <= radius
            sub_nodes = sorted(cl)
            remap = {v: j for j, v in enumerate(sub_nodes)}
            edges = [
                (remap[u], remap[v], w)
                for u in sub_nodes
                for v, w in g.neighbors(u).items()
                if v in cl and u < v
            ]
            if len(sub_nodes) > 1:
                sub = Graph(len(sub_nodes), edges)
                c = remap[centers[i]]
                assert max(sub.distances_from(c)) <= radius

    def test_padded_nodes_have_contained_balls(self):
        g = topologies.line(24)
        rng = np.random.default_rng(2)
        clusters, padded, _ = greedy_ball_partition(g, radius=6, pad=2, rng=rng)
        index = {}
        for i, cl in enumerate(clusters):
            for v in cl:
                index[v] = i
        for v in padded:
            for u in g.ball(v, 2):
                assert index[u] == index[v]

    def test_cover_with_greedy_construction(self):
        g = topologies.grid([4, 5])
        cover = build_sparse_cover(g, seed=3, construction="greedy")
        assert cover.verify() == []

    def test_unknown_construction(self):
        with pytest.raises(CoverError):
            build_sparse_cover(topologies.line(4), construction="magic")

    def test_distributed_scheduler_on_greedy_cover(self):
        from repro.analysis import run_experiment
        from repro.core import DistributedBucketScheduler
        from repro.offline import ColoringBatchScheduler
        from repro.workloads import OnlineWorkload

        g = topologies.grid([3, 4])
        cover = build_sparse_cover(g, seed=1, construction="greedy")
        wl = OnlineWorkload.bernoulli(g, num_objects=4, k=2, rate=0.06, horizon=25, seed=4)
        sched = DistributedBucketScheduler(ColoringBatchScheduler(), cover=cover)
        res = run_experiment(g, sched, wl, config=SimConfig(object_speed_den=2))
        assert res.trace.num_txns == wl.num_txns


class TestSparseCover:
    @pytest.mark.parametrize(
        "graph",
        [
            topologies.line(20),
            topologies.grid([4, 5]),
            topologies.clique(12),
            topologies.star_graph(3, 4),
            topologies.cluster_graph(3, 3, gamma=4),
        ],
        ids=lambda g: g.name,
    )
    def test_properties_verified(self, graph):
        cover = build_sparse_cover(graph, seed=0)
        assert cover.verify() == []

    def test_layer_count(self):
        g = topologies.line(20)  # D = 19
        cover = build_sparse_cover(g, seed=0)
        import math

        assert cover.num_layers == math.floor(math.log2(19)) + 2
        # top layer pad covers the diameter
        assert cover.pad_of_layer(cover.num_layers - 1) >= g.diameter()

    def test_layer0_singletons(self):
        g = topologies.line(8)
        cover = build_sparse_cover(g, seed=0)
        for v in g.nodes():
            home = cover.home_cluster(v, 0)
            assert home.nodes == frozenset({v})
            assert home.leader == v

    def test_top_layer_whole_graph(self):
        g = topologies.line(8)
        cover = build_sparse_cover(g, seed=0)
        top = cover.num_layers - 1
        assert cover.home_cluster(3, top).nodes == frozenset(g.nodes())

    def test_lowest_layer_covering(self):
        g = topologies.line(32)
        cover = build_sparse_cover(g, seed=1)
        assert cover.lowest_layer_covering(5, 0) == 0
        layer = cover.lowest_layer_covering(5, 6)
        assert cover.pad_of_layer(layer) >= 6
        assert layer == 3  # 2**3 - 1 = 7 >= 6

    def test_deterministic_with_seed(self):
        g = topologies.grid([4, 4])
        c1 = build_sparse_cover(g, seed=9)
        c2 = build_sparse_cover(g, seed=9)
        for l in range(c1.num_layers):
            for v in g.nodes():
                assert c1.home_cluster(v, l).nodes == c2.home_cluster(v, l).nodes

    def test_sublayer_count_logarithmic(self):
        g = topologies.line(64)
        cover = build_sparse_cover(g, seed=4)
        import math

        logn = math.ceil(math.log2(g.num_nodes + 1))
        # H2 = O(log n): random rounds capped at 4 log n, forced rounds rare
        assert cover.max_sublayers <= 4 * logn + 8

    @given(st.integers(0, 10_000))
    @settings(max_examples=10, deadline=None)
    def test_random_seeds_always_valid(self, seed):
        g = topologies.grid([3, 4])
        cover = build_sparse_cover(g, seed=seed)
        assert cover.verify() == []
