"""SimConfig consolidation tests.

The frozen :class:`~repro.sim.config.SimConfig` value object must (a)
validate knob combinations, (b) merge with explicit keyword arguments
under the kwargs-win rule, (c) keep every previously-valid ``Simulator``
keyword call working unchanged, and (d) thread through
``run_experiment`` / ``replicate`` so congested (hop-motion,
link-capacity, non-strict) experiments work end-to-end — the gap that
motivated the consolidation.
"""

import dataclasses

import pytest

from repro import DeparturePolicy, SimConfig, Simulator
from repro.analysis import replicate, run_experiment
from repro.core import GreedyScheduler
from repro.errors import WorkloadError
from repro.network import topologies
from repro.obs import CountersProbe
from repro.workloads import BatchWorkload, ClosedLoopWorkload


def _setup(n=8, seed=0):
    g = topologies.clique(n)
    wl = ClosedLoopWorkload(g, num_objects=4, k=2, rounds=2, seed=seed)
    return g, wl


# -- the value object ----------------------------------------------------

def test_defaults_match_simulator_defaults():
    cfg = SimConfig()
    assert cfg.departure_policy is DeparturePolicy.EAGER
    assert cfg.object_speed_den == 1
    assert cfg.strict is True
    assert cfg.one_txn_per_node is False
    assert cfg.node_egress_capacity is None
    assert cfg.hop_motion is False
    assert cfg.link_capacity is None
    assert cfg.max_time is None
    assert cfg.probe is None


def test_frozen():
    cfg = SimConfig()
    with pytest.raises(dataclasses.FrozenInstanceError):
        cfg.strict = False


@pytest.mark.parametrize("bad", [
    dict(link_capacity=1),                      # requires hop_motion
    dict(hop_motion=True, link_capacity=0),     # capacity >= 1
    dict(object_speed_den=0),
    dict(object_speed_den=-2),
    dict(node_egress_capacity=0),               # capacity >= 1
    dict(node_egress_capacity=-1),
    dict(max_time=-1),
    dict(faults="drop=0.1"),                    # must be a FaultPlan
    dict(faults=42),
])
def test_validation(bad):
    with pytest.raises(WorkloadError):
        SimConfig(**bad)


def test_validation_messages_name_the_value():
    """validate() errors must quote the offending value (debuggability)."""
    with pytest.raises(WorkloadError, match="-3"):
        SimConfig(object_speed_den=-3)
    with pytest.raises(WorkloadError, match="-7"):
        SimConfig(max_time=-7)


def test_validate_is_public_and_idempotent():
    cfg = SimConfig(hop_motion=True, link_capacity=2, max_time=100)
    cfg.validate()  # explicit re-check of a valid config is a no-op
    from repro.faults import FaultPlan
    SimConfig(faults=FaultPlan(drop_prob=0.1)).validate()


def test_with_overrides_kwargs_win_and_none_ignored():
    cfg = SimConfig(object_speed_den=2, strict=False)
    merged = cfg.with_overrides(object_speed_den=3, strict=None, max_time=None)
    assert merged.object_speed_den == 3   # explicit value wins
    assert merged.strict is False         # None override leaves config value
    assert merged.max_time is None
    assert cfg.object_speed_den == 2      # original untouched
    assert cfg.with_overrides() is cfg    # no changes: same object


def test_replace():
    cfg = SimConfig().replace(hop_motion=True, link_capacity=2)
    assert cfg.hop_motion and cfg.link_capacity == 2


# -- Simulator integration ----------------------------------------------

def test_simulator_accepts_config_object():
    g, wl = _setup()
    cfg = SimConfig(object_speed_den=2, strict=False)
    sim = Simulator(g, GreedyScheduler(), wl, config=cfg)
    assert sim.config.object_speed_den == 2
    assert sim.object_speed_den == 2
    assert sim.strict is False


def test_simulator_kwargs_win_over_config():
    g, wl = _setup()
    cfg = SimConfig(object_speed_den=2, strict=False)
    sim = Simulator(g, GreedyScheduler(), wl, config=cfg, object_speed_den=3)
    assert sim.object_speed_den == 3      # kwarg beats config field
    assert sim.strict is False            # untouched field survives
    assert sim.config.object_speed_den == 3


def test_all_legacy_simulator_kwargs_still_accepted():
    """Every previously-valid keyword call passes unchanged (acceptance)."""
    g, wl = _setup()
    sim = Simulator(
        g, GreedyScheduler(), wl,
        departure_policy=DeparturePolicy.LAZY,
        object_speed_den=2,
        strict=False,
        one_txn_per_node=False,
        node_egress_capacity=4,
        hop_motion=True,
        link_capacity=3,
        max_time=500,
    )
    cfg = sim.config
    assert cfg.departure_policy is DeparturePolicy.LAZY
    assert cfg.object_speed_den == 2
    assert cfg.strict is False
    assert cfg.node_egress_capacity == 4
    assert cfg.hop_motion and cfg.link_capacity == 3
    assert cfg.max_time == 500
    sim.run()  # and it still runs


def test_simulator_config_same_trace_as_kwargs():
    g, wl1 = _setup(seed=3)
    _, wl2 = _setup(seed=3)
    t1 = Simulator(g, GreedyScheduler(), wl1, object_speed_den=2).run()
    t2 = Simulator(g, GreedyScheduler(), wl2,
                   config=SimConfig(object_speed_den=2)).run()
    assert t1.end_time == t2.end_time
    assert len(t1.txns) == len(t2.txns)


def test_probe_threads_through_config():
    g, wl = _setup()
    probe = CountersProbe()
    Simulator(g, GreedyScheduler(), wl, config=SimConfig(probe=probe)).run()
    assert probe.counters["commits"] > 0


# -- run_experiment / replicate threading --------------------------------

def test_run_experiment_congested_config_end_to_end():
    """The acceptance-criterion call: hop-motion + unit link capacity,
    non-strict, through run_experiment (previously inexpressible)."""
    g = topologies.grid([4, 4])
    wl = BatchWorkload.uniform(g, num_objects=6, k=2, seed=0)
    res = run_experiment(
        g, GreedyScheduler(), wl,
        config=SimConfig(hop_motion=True, link_capacity=1, strict=False),
    )
    assert res.makespan > 0
    assert res.metrics.num_txns == len(res.trace.txns) > 0
    assert res.deadline_misses >= 0  # deferral accounting exposed


def test_run_experiment_kwargs_still_win_over_config():
    g, wl = _setup()
    with pytest.warns(DeprecationWarning, match="object_speed_den"):
        res = run_experiment(
            g, GreedyScheduler(), wl,
            config=SimConfig(object_speed_den=3), object_speed_den=1,
        )
    assert res.trace.object_speed_den == 1


def test_replicate_threads_config():
    g = topologies.clique(6)

    def experiment(seed, config=None):
        wl = ClosedLoopWorkload(g, num_objects=3, k=2, rounds=2, seed=seed)
        res = run_experiment(g, GreedyScheduler(), wl, config=config)
        assert res.trace.object_speed_den == 2  # config actually arrived
        return {"makespan": res.makespan}

    aggs = replicate(experiment, [0, 1, 2], config=SimConfig(object_speed_den=2))
    assert aggs["makespan"].n == 3
