"""Property tests: closed-form distance oracles vs the Dijkstra fallback.

For every structured topology, at a sweep of sizes and dimension shapes,
the attached oracle must return *exactly* the same distance as the cached
Dijkstra path for every node pair — the byte-identity of golden traces
rests on it.  ``diameter`` and ``eccentricity`` must agree too (the
closed forms replaced a max-over-rows scan that was O(n^2) even on a
clique).
"""

import pytest

from repro.network import topologies
from repro.network.graph import Graph
from repro.network.oracles import OracleRow, estimate_matrix_bytes


def strip_oracle(g: Graph) -> Graph:
    """A same-structure graph forced onto the explicit Dijkstra path."""
    bare = Graph(g.num_nodes, g.edges(), name=g.name)
    assert bare.oracle is None
    return bare


def assert_oracle_exact(g: Graph) -> None:
    assert g.oracle is not None, f"{g.name}: expected an oracle"
    bare = strip_oracle(g)
    n = g.num_nodes
    for u in range(n):
        row = bare.distances_from(u)
        fast = g.distances_from(u)
        for v in range(n):
            assert g.distance(u, v) == row[v], (g.name, u, v)
            assert fast[v] == row[v], (g.name, u, v)
        assert g.eccentricity(u) == bare.eccentricity(u), (g.name, u)
    assert g.diameter() == bare.diameter(), g.name


CASES = [
    *[topologies.clique(n, w) for n in (1, 2, 3, 7) for w in (1, 3)],
    *[topologies.line(n, w) for n in (1, 2, 9) for w in (1, 2)],
    *[topologies.ring(n, w) for n in (3, 4, 8, 9) for w in (1, 4)],
    *[topologies.grid(dims, w) for dims in ([5], [1, 4], [3, 4], [2, 3, 2]) for w in (1, 2)],
    *[topologies.torus(dims, w) for dims in ([3], [3, 5], [4, 4], [3, 3, 4]) for w in (1, 3)],
    *[topologies.hypercube(d, w) for d in (1, 2, 4) for w in (1, 2)],
    *[
        topologies.cluster_graph(a, b, c)
        for a, b, c in ((1, 5, 7), (2, 2, 9), (3, 4, 6), (4, 1, 2), (5, 3, 3))
    ],
    *[
        topologies.star_graph(a, b, w)
        for a, b, w in ((1, 5, 1), (3, 4, 2), (5, 1, 1), (2, 3, 3))
    ],
    *[
        topologies.tree(b, d, w)
        for b, d, w in ((1, 5, 1), (2, 0, 1), (2, 3, 2), (3, 2, 1), (4, 2, 3))
    ],
]


@pytest.mark.parametrize("g", CASES, ids=lambda g: g.name)
def test_oracle_matches_dijkstra_exactly(g):
    assert_oracle_exact(g)


def test_float_weights_get_no_oracle():
    assert topologies.clique(5, 1.5).oracle is None
    assert topologies.line(5, 0.25).oracle is None
    assert topologies.grid([3, 3], 2.0).oracle is None
    assert topologies.torus([3, 3], 0.5).oracle is None
    assert topologies.hypercube(3, 1.5).oracle is None
    assert topologies.star_graph(2, 2, 2.5).oracle is None
    assert topologies.tree(2, 2, 1.5).oracle is None
    assert topologies.cluster_graph(2, 2, 2.5).oracle is None


def test_unstructured_topologies_get_no_oracle():
    assert topologies.butterfly(2).oracle is None
    assert topologies.random_geometric(12, 0.6, seed=1).oracle is None


def test_bool_weight_is_not_exact():
    # bools are ints in Python; weights of True would be legal but weird —
    # the exactness gate deliberately excludes them.
    assert topologies.clique(4, True).oracle is None


def test_oracle_graph_never_runs_dijkstra():
    g = topologies.torus([30, 30])
    g.distance(0, 550)
    g.distances_from(17)
    g.eccentricity(3)
    g.diameter()
    assert not g._dist, "oracle graph materialised a Dijkstra row"


def test_oracle_row_cache_is_bounded():
    g = topologies.grid([20, 20])
    for src in range(g.num_nodes):
        g.distances_from(src)
    assert len(g._oracle_rows) <= Graph.ORACLE_ROW_CACHE_MAX


def test_oracle_row_view_matches_row():
    g = topologies.cluster_graph(3, 4, 5)
    view = OracleRow(g.oracle, 7)
    row = g.distances_from(7)
    assert [view[v] for v in range(g.num_nodes)] == list(row)


def test_distance_avoiding_ignores_oracle():
    # Cut-aware queries must keep the explicit path: cutting the direct
    # ring edge (0,1) forces the long way round regardless of the oracle.
    g = topologies.ring(6)
    cut = frozenset({(0, 1)})
    assert g.distance(0, 1) == 1
    assert g.distance_avoiding(0, 1, cut) == 5


def test_neighborhood_alias():
    g = topologies.line(9)
    assert g.neighborhood(4, 2) == g.ball(4, 2)


def test_estimate_matrix_bytes_monotone():
    assert estimate_matrix_bytes(10_000) > estimate_matrix_bytes(1_000) > 0
