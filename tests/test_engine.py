"""Unit tests for the synchronous engine."""

import pytest

from repro._types import DeparturePolicy, TxnState
from repro.core.base import OnlineScheduler
from repro.errors import InfeasibleScheduleError, SchedulingError, WorkloadError
from repro.network import topologies
from repro.sim.engine import Simulator
from repro.sim.transactions import TxnSpec
from repro.sim.validate import certify_trace
from repro.workloads import ManualWorkload


class ScriptedScheduler(OnlineScheduler):
    """Schedules each arriving transaction at gen_time + a scripted offset."""

    def __init__(self, offsets):
        super().__init__()
        self.offsets = dict(offsets)

    def on_step(self, t, new_txns):
        for txn in new_txns:
            self.sim.commit_schedule(txn, t + self.offsets[txn.home])


class NullScheduler(OnlineScheduler):
    def on_step(self, t, new_txns):
        pass


def line_sim(offsets, specs, placement, n=8, **kw):
    wl = ManualWorkload(placement, specs)
    return Simulator(topologies.line(n), ScriptedScheduler(offsets), wl, **kw)


class TestBasicExecution:
    def test_single_txn_local_object(self):
        # object already at home: execute at t+1, no movement
        sim = line_sim({3: 1}, [TxnSpec(0, 3, (0,))], {0: 3})
        trace = sim.run()
        assert trace.txns[0].exec_time == 1
        assert trace.legs == []
        certify_trace(sim.graph, trace)

    def test_single_txn_remote_object(self):
        # object at node 0, txn at node 5 -> needs 5 steps
        sim = line_sim({5: 5}, [TxnSpec(0, 5, (0,))], {0: 0})
        trace = sim.run()
        assert trace.txns[0].exec_time == 5
        assert len(trace.legs) == 1
        leg = trace.legs[0]
        assert (leg.src, leg.dst, leg.depart_time, leg.arrive_time) == (0, 5, 0, 5)

    def test_object_chain_two_txns(self):
        # txn at node 2 at t=2 then object moves to node 6 for t=6
        specs = [TxnSpec(0, 2, (0,)), TxnSpec(0, 6, (0,))]
        sim = line_sim({2: 2, 6: 6}, specs, {0: 0})
        trace = sim.run()
        assert trace.txns[0].exec_time == 2
        assert trace.txns[1].exec_time == 6
        assert [(l.src, l.dst) for l in trace.legs] == [(0, 2), (2, 6)]
        certify_trace(sim.graph, trace)

    def test_object_waits_for_holder(self):
        # second requester scheduled later: object stays until first commits
        specs = [TxnSpec(0, 2, (0,)), TxnSpec(0, 6, (0,))]
        sim = line_sim({2: 4, 6: 10}, specs, {0: 0})
        trace = sim.run()
        legs = trace.legs
        assert legs[1].depart_time == 4  # leaves only after first commit
        assert trace.txns[1].exec_time == 10

    def test_infeasible_raises_in_strict_mode(self):
        sim = line_sim({7: 2}, [TxnSpec(0, 7, (0,))], {0: 0})  # needs 7 steps
        with pytest.raises(InfeasibleScheduleError):
            sim.run()

    def test_nonstrict_defers_and_records_violation(self):
        sim = line_sim({7: 2}, [TxnSpec(0, 7, (0,))], {0: 0}, strict=False)
        trace = sim.run()
        assert trace.violations
        assert trace.txns[0].exec_time == 7  # executed when object arrived


class TestSchedulerContract:
    def test_double_schedule_rejected(self):
        class Double(OnlineScheduler):
            def on_step(self, t, new_txns):
                for txn in new_txns:
                    self.sim.commit_schedule(txn, t + 1)
                    self.sim.commit_schedule(txn, t + 2)

        wl = ManualWorkload({0: 0}, [TxnSpec(0, 0, (0,))])
        sim = Simulator(topologies.line(4), Double(), wl)
        with pytest.raises(SchedulingError):
            sim.run()

    def test_past_exec_time_rejected(self):
        class Past(OnlineScheduler):
            def on_step(self, t, new_txns):
                for txn in new_txns:
                    self.sim.commit_schedule(txn, t - 1)

        wl = ManualWorkload({0: 0}, [TxnSpec(1, 0, (0,))])
        sim = Simulator(topologies.line(4), Past(), wl)
        with pytest.raises(SchedulingError):
            sim.run()

    def test_deadlock_detected_when_never_scheduled(self):
        wl = ManualWorkload({0: 0}, [TxnSpec(0, 0, (0,))])
        sim = Simulator(topologies.line(4), NullScheduler(), wl)
        with pytest.raises(SchedulingError, match="deadlock"):
            sim.run()

    def test_unknown_object_rejected(self):
        wl = ManualWorkload({}, [TxnSpec(0, 0, (42,))])
        sim = Simulator(topologies.line(4), NullScheduler(), wl)
        with pytest.raises(WorkloadError):
            sim.run()


class TestArrivalHandling:
    def test_gen_times_respected(self):
        specs = [TxnSpec(5, 1, (0,)), TxnSpec(9, 2, (1,))]
        sim = line_sim({1: 1, 2: 1}, specs, {0: 1, 1: 2})
        trace = sim.run()
        assert trace.txns[0].gen_time == 5
        assert trace.txns[1].gen_time == 9

    def test_tids_assigned_in_arrival_order(self):
        specs = [TxnSpec(3, 2, (0,)), TxnSpec(1, 4, (1,))]
        sim = line_sim({2: 1, 4: 1}, specs, {0: 2, 1: 4})
        trace = sim.run()
        # txn at node 4 arrived first -> tid 0
        assert trace.txns[0].home == 4
        assert trace.txns[1].home == 2

    def test_one_txn_per_node_enforced(self):
        specs = [TxnSpec(0, 2, (0,)), TxnSpec(0, 2, (1,))]
        wl = ManualWorkload({0: 2, 1: 2}, specs)
        sim = Simulator(
            topologies.line(4), ScriptedScheduler({2: 1}), wl, one_txn_per_node=True
        )
        with pytest.raises(WorkloadError):
            sim.run()

    def test_submit_in_past_rejected(self):
        sim = Simulator(topologies.line(4), NullScheduler())
        sim.now = 10
        with pytest.raises(WorkloadError):
            sim.submit(TxnSpec(5, 0, ()))


class TestDeparturePolicies:
    def test_lazy_departs_just_in_time(self):
        specs = [TxnSpec(0, 5, (0,))]
        sim = line_sim(
            {5: 20}, specs, {0: 0}, departure_policy=DeparturePolicy.LAZY
        )
        trace = sim.run()
        leg = trace.legs[0]
        assert leg.depart_time == 15  # 20 - distance 5
        assert leg.arrive_time == 20
        certify_trace(sim.graph, trace)

    def test_eager_departs_immediately(self):
        specs = [TxnSpec(0, 5, (0,))]
        sim = line_sim({5: 20}, specs, {0: 0})
        trace = sim.run()
        assert trace.legs[0].depart_time == 0
        assert trace.legs[0].arrive_time == 5

    def test_half_speed_objects(self):
        specs = [TxnSpec(0, 5, (0,))]
        sim = line_sim({5: 10}, specs, {0: 0}, object_speed_den=2)
        trace = sim.run()
        leg = trace.legs[0]
        assert leg.arrive_time - leg.depart_time == 10
        certify_trace(sim.graph, trace)


class TestObjectCreation:
    def test_created_object_appears_at_commit(self):
        class Sched(OnlineScheduler):
            def on_step(self, t, new_txns):
                for txn in new_txns:
                    offset = 1 if not txn.objects else 5
                    self.sim.commit_schedule(txn, t + offset)

        specs = [TxnSpec(0, 2, (), creates=(7,)), TxnSpec(2, 4, (7,))]
        wl = ManualWorkload({}, specs)
        sim = Simulator(topologies.line(8), Sched(), wl)
        trace = sim.run()
        assert trace.txns[1].exec_time == 7
        assert sim.objects[7].location == 4

    def test_requesting_object_before_creation_fails(self):
        specs = [TxnSpec(0, 4, (7,)), TxnSpec(1, 2, (), creates=(7,))]
        wl = ManualWorkload({}, specs)
        sim = Simulator(topologies.line(8), NullScheduler(), wl)
        with pytest.raises(WorkloadError):
            sim.run()


class TestQuiescenceAndTicks:
    def test_time_skipping_is_transparent(self):
        # events at 0 and 1000: engine must not iterate a million steps
        specs = [TxnSpec(0, 1, (0,)), TxnSpec(1000, 2, (0,))]
        sim = line_sim({1: 1, 2: 3}, specs, {0: 1})
        trace = sim.run(max_steps=50)
        assert trace.txns[1].exec_time == 1003

    def test_empty_run_terminates(self):
        sim = Simulator(topologies.line(4), NullScheduler())
        trace = sim.run()
        assert trace.num_txns == 0

    def test_max_steps_allows_exactly_n_active_steps(self):
        # The chain needs active steps at t=2 and t=6 (plus the t=0
        # bootstrap step, which max_steps does not count).
        def fresh():
            specs = [TxnSpec(0, 2, (0,)), TxnSpec(0, 6, (0,))]
            return line_sim({2: 2, 6: 6}, specs, {0: 0})

        trace = fresh().run(max_steps=2)  # exactly enough
        assert len(trace.txns) == 2

        with pytest.raises(SchedulingError, match="max_steps=1"):
            fresh().run(max_steps=1)

    def test_max_steps_stops_before_extra_step_runs(self):
        # With max_steps=N, the (N+1)-th step must NOT execute: the
        # second transaction stays live and uncommitted after the raise.
        specs = [TxnSpec(0, 2, (0,)), TxnSpec(0, 6, (0,))]
        sim = line_sim({2: 2, 6: 6}, specs, {0: 0})
        with pytest.raises(SchedulingError):
            sim.run(max_steps=1)
        assert sim.txns[0].state is TxnState.EXECUTED  # step 1 (t=2) ran
        assert sim.txns[1].state is not TxnState.EXECUTED  # step 2 did not

    def test_duplicate_alarms_deduplicated(self):
        sim = Simulator(topologies.line(4), NullScheduler())
        for _ in range(5):
            sim.add_alarm(10)
        sim.add_alarm(12)
        assert sim.events.pending_alarms() == [10, 12]
        sim.run_until(12)
        assert sim.events.pending_alarms() == []
