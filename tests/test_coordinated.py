"""Tests for the Section III-E coordinated greedy scheduler."""

import pytest

from repro.analysis import run_experiment
from repro.core import CoordinatedGreedyScheduler, GreedyScheduler
from repro.network import topologies
from repro.sim.transactions import TxnSpec
from repro.workloads import BatchWorkload, ManualWorkload, OnlineWorkload


class TestCoordinator:
    def test_defaults_to_graph_center(self):
        g = topologies.line(9)
        sched = CoordinatedGreedyScheduler()
        wl = BatchWorkload.uniform(g, num_objects=2, k=1, seed=0)
        run_experiment(g, sched, wl)
        assert sched.coordinator == 4  # middle of the line

    def test_explicit_coordinator(self):
        g = topologies.line(9)
        sched = CoordinatedGreedyScheduler(coordinator=0)
        wl = BatchWorkload.uniform(g, num_objects=2, k=1, seed=0)
        run_experiment(g, sched, wl)
        assert sched.coordinator == 0

    def test_latency_includes_round_trip(self):
        # txn at the end of a line, coordinator at the center: the request
        # pays dist to the coordinator and the decision pays it back.
        g = topologies.line(9)
        wl = ManualWorkload({0: 8}, [TxnSpec(0, 8, (0,))])
        sched = CoordinatedGreedyScheduler(coordinator=0)
        res = run_experiment(g, sched, wl)
        rec = res.trace.txns[0]
        # request 8 steps + decision floor >= 8 back
        assert rec.exec_time >= 16

    def test_messages_counted(self):
        g = topologies.grid([3, 3])
        wl = OnlineWorkload.bernoulli(g, num_objects=4, k=2, rate=0.08, horizon=20, seed=1)
        res = run_experiment(g, CoordinatedGreedyScheduler(), wl)
        assert res.metrics.messages_sent == res.trace.num_txns  # one request each

    def test_overhead_vs_clairvoyant_greedy(self):
        """Section III-E: the coordinated variant scales latencies by
        roughly the information round-trip, never better than clairvoyant
        greedy and bounded by ~2*ecc extra per transaction."""
        g = topologies.hypercube(4)
        mk = lambda: OnlineWorkload.bernoulli(g, num_objects=6, k=2, rate=0.05, horizon=30, seed=2)
        base = run_experiment(g, GreedyScheduler(), mk())
        coord = run_experiment(g, CoordinatedGreedyScheduler(), mk())
        ecc = min(g.eccentricity(u) for u in g.nodes())
        assert coord.metrics.mean_latency >= base.metrics.mean_latency
        assert coord.metrics.max_latency <= base.metrics.max_latency + 4 * ecc + 4

    def test_feasible_with_reads(self):
        g = topologies.line(10)
        wl = OnlineWorkload.bernoulli(
            g, num_objects=4, k=2, rate=0.06, horizon=30, seed=3, read_fraction=0.5
        )
        res = run_experiment(g, CoordinatedGreedyScheduler(), wl)
        assert res.trace.num_txns == wl.num_txns
