"""Tests for the batch-plan local-search improver."""

import pytest

from repro.analysis import run_experiment
from repro.core import BucketScheduler
from repro.network import topologies
from repro.offline import (
    ColoringBatchScheduler,
    ImprovedBatchScheduler,
    StandaloneView,
)
from repro.sim.transactions import Transaction
from repro.workloads import BatchWorkload, OnlineWorkload
from test_offline import batch_txns, plan_is_valid


class TestImprover:
    def test_never_worse_than_base(self):
        g = topologies.line(16)
        for seed in range(4):
            wl = BatchWorkload.uniform(g, num_objects=6, k=2, seed=seed)
            txns = batch_txns(wl)
            view = StandaloneView(g, wl.initial_objects())
            base = ColoringBatchScheduler("arrival")
            improved = ImprovedBatchScheduler(base, iterations=40, seed=1)
            b = max(base.plan(view, txns).values())
            i = max(improved.plan(view, txns).values())
            assert i <= b

    def test_plans_stay_feasible(self):
        g = topologies.cluster_graph(3, 4, gamma=6)
        wl = BatchWorkload.uniform(g, num_objects=5, k=2, seed=7)
        txns = batch_txns(wl)
        view = StandaloneView(g, wl.initial_objects())
        improved = ImprovedBatchScheduler(ColoringBatchScheduler(), iterations=60, seed=2)
        plan = improved.plan(view, txns)
        assert plan_is_valid(g, wl.initial_objects(), txns, plan)

    def test_deterministic(self):
        g = topologies.grid([3, 4])
        wl = BatchWorkload.uniform(g, num_objects=5, k=2, seed=3)
        txns = batch_txns(wl)
        view = StandaloneView(g, wl.initial_objects())
        a = ImprovedBatchScheduler(ColoringBatchScheduler(), seed=5).plan(view, txns)
        b = ImprovedBatchScheduler(ColoringBatchScheduler(), seed=5).plan(view, txns)
        assert a == b

    def test_finds_improvement_on_shuffled_hotspot(self):
        # arrival order deliberately bad on a line hotspot: improver should
        # recover (most of) the sweep.
        g = topologies.line(12)
        placement = {0: 0}
        scrambled = [7, 2, 11, 0, 9, 4, 1, 8, 3, 10, 5, 6]
        txns = [Transaction(i, h, frozenset({0}), 0) for i, h in enumerate(scrambled)]
        view = StandaloneView(g, placement)
        base = ColoringBatchScheduler("arrival")
        improved = ImprovedBatchScheduler(base, iterations=200, seed=0, restarts=2)
        b = max(base.plan(view, txns).values())
        i = max(improved.plan(view, txns).values())
        assert i <= b

    def test_small_batches_passthrough(self):
        g = topologies.line(6)
        wl = BatchWorkload.uniform(g, num_objects=2, k=1, seed=0, num_txns=2)
        txns = batch_txns(wl)
        view = StandaloneView(g, wl.initial_objects())
        base = ColoringBatchScheduler()
        improved = ImprovedBatchScheduler(base, seed=1)
        assert improved.plan(view, txns) == base.plan(view, txns)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            ImprovedBatchScheduler(ColoringBatchScheduler(), iterations=-1)

    def test_inside_bucket_scheduler(self):
        g = topologies.line(16)
        wl = OnlineWorkload.bernoulli(g, num_objects=5, k=2, rate=0.05, horizon=30, seed=9)
        improved = ImprovedBatchScheduler(ColoringBatchScheduler(), iterations=15, seed=3)
        res = run_experiment(g, BucketScheduler(improved), wl)
        assert res.trace.num_txns == wl.num_txns
