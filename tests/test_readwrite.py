"""Tests for the read/write extension: copies, versions, invalidation."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis import run_experiment
from repro.core import BucketScheduler, GreedyScheduler
from repro.core.base import OnlineScheduler
from repro.network import topologies
from repro.offline import ColoringBatchScheduler
from repro.sim.engine import Simulator
from repro.sim.trace import CopyLeg
from repro.sim.transactions import TxnSpec
from repro.sim.validate import certify_trace
from repro.workloads import ManualWorkload, OnlineWorkload


class TestSpecValidation:
    def test_read_write_overlap_rejected(self):
        with pytest.raises(ValueError):
            TxnSpec(0, 0, (1,), reads=(1,))

    def test_all_objects_union(self):
        from repro.sim.transactions import Transaction

        t = Transaction(0, 0, frozenset({1}), 0, reads=frozenset({2}))
        assert t.all_objects == frozenset({1, 2})


class TestCopySemantics:
    def test_reader_gets_copy_master_stays(self):
        g = topologies.line(8)
        wl = ManualWorkload({0: 0}, [TxnSpec(0, 5, (), reads=(0,))])
        res = run_experiment(g, GreedyScheduler(), wl)
        assert res.trace.legs == []  # master never moved
        assert len(res.trace.copy_legs) == 1
        cl = res.trace.copy_legs[0]
        assert (cl.src, cl.dst, cl.version) == (0, 5, 0)

    def test_concurrent_readers_share(self):
        # three readers of the same object may execute simultaneously
        g = topologies.clique(6)
        specs = [TxnSpec(0, i, (), reads=(0,)) for i in range(1, 4)]
        wl = ManualWorkload({0: 0}, specs)
        res = run_experiment(g, GreedyScheduler(), wl)
        times = {r.exec_time for r in res.trace.txns.values()}
        assert len(times) == 1  # all at the same step: reads don't conflict
        assert len(res.trace.copy_legs) == 3

    def test_writers_still_serialize_with_readers(self):
        g = topologies.clique(4)
        specs = [TxnSpec(0, 1, (0,)), TxnSpec(0, 2, (), reads=(0,)), TxnSpec(0, 3, (0,))]
        wl = ManualWorkload({0: 0}, specs)
        res = run_experiment(g, GreedyScheduler(), wl)
        recs = res.trace.txns
        # w-r and w-w conflict: all three pairwise-distinct except reader
        # may share with nothing here (weight 1 apart)
        assert recs[0].exec_time != recs[1].exec_time
        assert recs[2].exec_time != recs[1].exec_time

    def test_reader_after_writer_gets_new_version(self):
        g = topologies.line(8)
        specs = [TxnSpec(0, 4, (0,)), TxnSpec(1, 6, (), reads=(0,))]
        wl = ManualWorkload({0: 0}, specs)
        res = run_experiment(g, GreedyScheduler(), wl)
        writer = res.trace.txns[0]
        reader = res.trace.txns[1]
        assert reader.exec_time > writer.exec_time
        current = [cl for cl in res.trace.copy_legs if cl.version == 1]
        assert current and current[-1].depart_time >= writer.exec_time

    def test_colocated_reader_zero_length_copy(self):
        g = topologies.line(8)
        wl = ManualWorkload({0: 3}, [TxnSpec(0, 3, (), reads=(0,))])
        res = run_experiment(g, GreedyScheduler(), wl)
        cl = res.trace.copy_legs[0]
        assert cl.src == cl.dst == 3
        assert cl.depart_time == cl.arrive_time


class TestInvalidation:
    def test_late_writer_invalidates_served_copy(self):
        """Reader scheduled far in the future gets an early copy; a writer
        arriving later is colored before the reader; the stale copy must
        be replaced by the writer's version."""
        g = topologies.line(16)

        class Scripted(OnlineScheduler):
            def on_step(self, t, new_txns):
                for txn in new_txns:
                    if txn.reads:
                        self.sim.commit_schedule(txn, 40)  # far future
                    else:
                        self.sim.commit_schedule(txn, t + 10)

            def has_pending(self):
                return False

        specs = [TxnSpec(0, 8, (), reads=(0,)), TxnSpec(2, 10, (0,))]
        wl = ManualWorkload({0: 0}, specs)
        sim = Simulator(g, Scripted(), wl)
        trace = sim.run()
        certify_trace(g, trace)
        reader_legs = [cl for cl in trace.copy_legs if cl.reader_tid == 0]
        assert len(reader_legs) == 2  # original + re-dispatch
        assert reader_legs[0].version == 0
        assert reader_legs[1].version == 1
        assert reader_legs[1].depart_time >= trace.txns[1].exec_time

    def test_validator_rejects_stale_only_copy(self):
        """Forged trace: reader holds only a version-0 copy although a
        preceding writer exists — certifier must flag it."""
        from repro.sim.trace import ExecutionTrace, ObjectLeg, TxnRecord

        g = topologies.line(8)
        trace = ExecutionTrace("t", {0: 0})
        trace.txns[0] = TxnRecord(0, 2, (0,), 0, 0, 2)  # writer at t=2
        trace.txns[1] = TxnRecord(1, 5, (), 0, 0, 9, reads=(0,))
        trace.legs.append(ObjectLeg(0, 0, 0, 2, 2))
        trace.copy_legs.append(CopyLeg(0, 1, 0, 0, 5, 5, version=0))  # stale!
        issues = certify_trace(g, trace, raise_on_failure=False)
        assert any(i.kind == "absent-copy" for i in issues)


class TestReadHeavyThroughput:
    def test_reads_cut_master_travel(self):
        g = topologies.grid([4, 4])
        res = {}
        for rf in (0.0, 0.8):
            wl = OnlineWorkload.bernoulli(
                g, num_objects=6, k=3, rate=0.06, horizon=40, seed=5, read_fraction=rf
            )
            res[rf] = run_experiment(g, GreedyScheduler(), wl)
        assert res[0.8].trace.total_object_travel() < res[0.0].trace.total_object_travel()

    def test_bucket_handles_reads(self):
        g = topologies.line(16)
        wl = OnlineWorkload.bernoulli(
            g, num_objects=6, k=2, rate=0.05, horizon=40, seed=2, read_fraction=0.5
        )
        res = run_experiment(g, BucketScheduler(ColoringBatchScheduler()), wl)
        assert res.trace.num_txns == wl.num_txns


@st.composite
def rw_instances(draw):
    n = draw(st.integers(3, 8))
    g = topologies.clique(n) if draw(st.booleans()) else topologies.line(n)
    no = draw(st.integers(1, 4))
    placement = {o: draw(st.integers(0, g.num_nodes - 1)) for o in range(no)}
    specs = []
    t = 0
    for _ in range(draw(st.integers(1, 10))):
        t += draw(st.integers(0, 5))
        k = draw(st.integers(1, no))
        objs = draw(st.lists(st.integers(0, no - 1), min_size=k, max_size=k, unique=True))
        cut = draw(st.integers(0, len(objs)))
        specs.append(
            TxnSpec(t, draw(st.integers(0, g.num_nodes - 1)), tuple(objs[:cut]), reads=tuple(objs[cut:]))
        )
    return g, ManualWorkload(placement, specs)


class TestReadWriteProperty:
    @given(rw_instances())
    @settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_greedy_rw_always_feasible_and_serializable(self, inst):
        g, wl = inst
        res = run_experiment(g, GreedyScheduler(), wl)  # certifier checks versions
        assert res.trace.num_txns == wl.num_txns

    @given(rw_instances())
    @settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_bucket_rw_always_feasible(self, inst):
        g, wl = inst
        res = run_experiment(g, BucketScheduler(ColoringBatchScheduler()), wl)
        assert res.trace.num_txns == wl.num_txns
