"""Fault injection + recovery (repro.faults) tests.

Four layers of guarantees:

1. **Inertness** — ``faults=None`` (and an inactive plan) leaves traces
   byte-identical to a fault-free run: the layer costs nothing unless
   armed.
2. **Determinism** — equal :class:`FaultPlan` + equal workload produce
   byte-identical serialized traces across runs (string-seeded RNG, no
   process-level randomness).
3. **Liveness** — under crash-restart plus 10% drops, *every* bundled
   scheduler still commits every transaction, with
   ``recovery.reschedules > 0`` observed through a CountersProbe.
4. **Accountability** — the certifier accepts honest faulted traces and
   rejects tampered ones (unexplained leg slack, inconsistent
   reschedule records); traces round-trip through JSON with their fault
   and reschedule records intact.
"""

import json

import pytest

from repro.cli import SCHEDULER_NAMES, make_scheduler
from repro.core import GreedyScheduler
from repro.errors import InfeasibleScheduleError, WorkloadError
from repro.faults import CrashWindow, FaultInjector, FaultPlan
from repro.network import topologies
from repro.obs import CountersProbe, JsonlProbe
from repro.sim import SimConfig, Simulator, certify_trace
from repro.sim.serialize import load_trace, save_trace, trace_to_dict
from repro.sim.trace import FaultRecord, RescheduleRecord
from repro.sim.transactions import TxnSpec
from repro.workloads import ManualWorkload, OnlineWorkload


def canonical(trace) -> str:
    return json.dumps(trace_to_dict(trace), sort_keys=True, indent=0)


def bernoulli_run(scheduler, plan, *, speed=1, probe=None, seed=1):
    g = topologies.grid([3, 3])
    wl = OnlineWorkload.bernoulli(g, 5, 2, rate=0.08, horizon=30, seed=seed)
    cfg = SimConfig(object_speed_den=speed, faults=plan, probe=probe)
    trace = Simulator(g, scheduler, wl, config=cfg).run()
    return g, trace


# ----------------------------------------------------------------------
# plan construction and validation
# ----------------------------------------------------------------------

class TestFaultPlan:
    def test_crash_window_validation(self):
        CrashWindow(0, 3, 5)  # fine
        with pytest.raises(WorkloadError):
            CrashWindow(0, 5, 5)
        with pytest.raises(WorkloadError):
            CrashWindow(0, -1, 4)

    @pytest.mark.parametrize("bad", [
        dict(drop_prob=1.0),                  # liveness needs < 1
        dict(drop_prob=-0.1),
        dict(delay_prob=1.5),
        dict(delay_prob=0.5),                 # delay without max_delay
        dict(max_delay=-1),
        dict(backoff_base=0),
        dict(backoff_base=8, backoff_cap=4),
        dict(max_reschedules=0),
    ])
    def test_plan_validation(self, bad):
        with pytest.raises(WorkloadError):
            FaultPlan(**bad)

    def test_active(self):
        assert not FaultPlan(seed=9).active
        assert FaultPlan(drop_prob=0.1).active
        assert FaultPlan(crashes=(CrashWindow(0, 1, 2),)).active

    def test_random_draws_seeded_windows(self):
        a = FaultPlan.random(3, num_nodes=8, horizon=40, crash_count=2)
        b = FaultPlan.random(3, num_nodes=8, horizon=40, crash_count=2)
        c = FaultPlan.random(4, num_nodes=8, horizon=40, crash_count=2)
        assert a.crashes == b.crashes and len(a.crashes) == 2
        assert a.crashes != c.crashes
        for w in a.crashes:
            assert 0 <= w.node < 8 and 1 <= w.start <= 40

    def test_parse(self):
        plan = FaultPlan.parse(
            "seed=3, drop=0.1, delay=0.05, crash=2, crash-len=6, backoff-cap=32",
            num_nodes=9, horizon=30,
        )
        assert plan.seed == 3 and plan.drop_prob == 0.1
        assert plan.max_delay == 3          # defaulted when delay > 0
        assert len(plan.crashes) == 2 and plan.crashes[0].duration == 6
        assert plan.backoff_cap == 32

    @pytest.mark.parametrize("spec", ["drpo=0.1", "drop", "drop=x", "seed=1.5"])
    def test_parse_rejects(self, spec):
        with pytest.raises(WorkloadError):
            FaultPlan.parse(spec, num_nodes=4, horizon=10)

    def test_config_rejects_non_plan(self):
        with pytest.raises(WorkloadError, match="FaultPlan"):
            SimConfig(faults="drop=0.1")


class TestInjector:
    def test_coin_is_cross_run_deterministic(self):
        a = FaultInjector(FaultPlan(seed=5, drop_prob=0.3))
        b = FaultInjector(FaultPlan(seed=5, drop_prob=0.3))
        drops = [(oid, t) for oid in range(4) for t in range(50)]
        assert [a.should_drop(o, t) for o, t in drops] == \
               [b.should_drop(o, t) for o, t in drops]
        assert any(a.should_drop(o, t) for o, t in drops)

    def test_jitter_bounds(self):
        inj = FaultInjector(FaultPlan(seed=2, delay_prob=0.5, max_delay=4))
        delays = [inj.leg_delay(oid, t) for oid in range(4) for t in range(40)]
        assert all(0 <= d <= 4 for d in delays)
        assert any(d > 0 for d in delays)
        assert FaultInjector(FaultPlan(seed=2)).leg_delay(0, 5) == 0

    def test_restart_time_chains_overlapping_windows(self):
        inj = FaultInjector(FaultPlan(crashes=(
            CrashWindow(1, 5, 10), CrashWindow(1, 10, 14), CrashWindow(1, 30, 32),
        )))
        assert inj.restart_time(1, 4) is None
        assert inj.restart_time(1, 5) == 14     # windows chain through t=10
        assert inj.restart_time(1, 13) == 14
        assert inj.restart_time(1, 14) is None
        assert inj.node_down(1, 31) and not inj.node_down(0, 31)

    def test_backoff_schedule(self):
        inj = FaultInjector(FaultPlan(backoff_base=2, backoff_cap=32))
        assert [inj.backoff_for(n) for n in (1, 2, 3, 4, 5, 6)] == \
               [2, 4, 8, 16, 32, 32]
        assert inj.backoff_for(10_000) == 32    # shift clamp, no overflow


# ----------------------------------------------------------------------
# inertness: no plan / inactive plan change nothing
# ----------------------------------------------------------------------

class TestInertness:
    def test_inactive_plan_is_byte_identical_to_no_plan(self):
        _, base = bernoulli_run(GreedyScheduler(), None)
        _, inactive = bernoulli_run(GreedyScheduler(), FaultPlan(seed=99))
        assert canonical(base) == canonical(inactive)
        assert not base.faults and not base.reschedules

    def test_faultless_serialization_has_no_new_keys(self):
        _, trace = bernoulli_run(GreedyScheduler(), None)
        d = trace_to_dict(trace)
        assert "faults" not in d and "reschedules" not in d


# ----------------------------------------------------------------------
# determinism: same plan => byte-identical certified traces
# ----------------------------------------------------------------------

class TestDeterminism:
    def test_two_runs_identical_and_certified(self):
        plan = FaultPlan.random(7, num_nodes=9, horizon=30,
                                drop_prob=0.1, delay_prob=0.05, max_delay=3,
                                crash_count=1, crash_len=6)
        g, t1 = bernoulli_run(GreedyScheduler(), plan)
        _, t2 = bernoulli_run(GreedyScheduler(), plan)
        assert canonical(t1) == canonical(t2)
        assert t1.faults and t1.reschedules
        assert certify_trace(g, t1) == []

    def test_different_seed_different_faults(self):
        mk = lambda s: FaultPlan.random(s, num_nodes=9, horizon=30, drop_prob=0.15)
        _, t1 = bernoulli_run(GreedyScheduler(), mk(1))
        _, t2 = bernoulli_run(GreedyScheduler(), mk(2))
        assert canonical(t1) != canonical(t2)


# ----------------------------------------------------------------------
# liveness: every bundled scheduler survives crash + 10% drop
# ----------------------------------------------------------------------

class TestLiveness:
    @pytest.mark.parametrize("name", SCHEDULER_NAMES)
    def test_all_schedulers_commit_under_faults(self, name):
        g = topologies.grid([3, 3])
        sched, speed = make_scheduler(name, g)
        plan = FaultPlan.random(7, num_nodes=g.num_nodes, horizon=30,
                                drop_prob=0.1, crash_count=1, crash_len=6)
        probe = CountersProbe()
        g, trace = bernoulli_run(sched, plan, speed=speed, probe=probe)
        assert len(trace.txns) == 20
        assert all(r.exec_time >= 0 for r in trace.txns.values())
        assert probe.counters["recovery.reschedules"] > 0
        assert probe.counters["recovery.reschedules"] == len(trace.reschedules)
        assert certify_trace(g, trace) == []

    def test_crash_defers_execution_past_restart(self):
        """A manual one-txn run whose home node is down at its committed
        time: the engine must reschedule it to >= the restart step."""
        g = topologies.line(6)
        wl = ManualWorkload({0: 0}, [TxnSpec(0, 4, (0,))])
        plan = FaultPlan(crashes=(CrashWindow(4, 1, 20),))
        trace = Simulator(g, GreedyScheduler(), wl,
                          config=SimConfig(faults=plan)).run()
        rec = trace.txns[0]
        assert rec.exec_time >= 20
        assert trace.reschedules and trace.reschedules[0].tid == 0
        assert certify_trace(g, trace) == []

    def test_reschedule_budget_exhaustion_raises(self):
        g = topologies.grid([3, 3])
        plan = FaultPlan.random(7, num_nodes=9, horizon=30,
                                drop_prob=0.6, max_reschedules=1)
        with pytest.raises(InfeasibleScheduleError):
            bernoulli_run(GreedyScheduler(), plan)


# ----------------------------------------------------------------------
# observability: counters and JSONL carry the fault story
# ----------------------------------------------------------------------

class TestObservability:
    def test_counters(self):
        plan = FaultPlan.random(7, num_nodes=9, horizon=30,
                                drop_prob=0.1, delay_prob=0.1, max_delay=3,
                                crash_count=1, crash_len=6)
        probe = CountersProbe()
        _, trace = bernoulli_run(GreedyScheduler(), plan, probe=probe)
        c = probe.counters
        counts = trace.fault_counts()
        assert c["faults.dropped"] == counts.get("drop", 0) > 0
        assert c["faults.crashes"] == counts.get("crash", 0) == 1
        assert c["faults.crashed_steps"] == 6
        assert c["recovery.reschedules"] == len(trace.reschedules) > 0
        assert c["recovery.backoff_max"] == trace.max_backoff() > 0

    def test_jsonl_events(self, tmp_path):
        path = tmp_path / "events.jsonl"
        plan = FaultPlan.random(7, num_nodes=9, horizon=30,
                                drop_prob=0.1, crash_count=1, crash_len=6)
        with open(path, "w") as fh:
            probe = JsonlProbe(fh)
            bernoulli_run(GreedyScheduler(), plan, probe=probe)
            probe.close()
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        events = [e for e in lines if "e" in e]  # skip the schema header
        names = {e["e"] for e in events}
        assert {"fault.drop", "fault.crash", "fault.restart", "reschedule"} <= names
        resch = next(e for e in events if e["e"] == "reschedule")
        assert {"t", "tid", "backoff", "exec", "missing"} <= set(resch)
        drop = next(e for e in events if e["e"] == "fault.drop")
        assert "oid" in drop


# ----------------------------------------------------------------------
# accountability: serialization round-trip + certifier tampering checks
# ----------------------------------------------------------------------

def faulted_trace():
    plan = FaultPlan.random(7, num_nodes=9, horizon=30,
                            drop_prob=0.1, delay_prob=0.1, max_delay=3,
                            crash_count=1, crash_len=6)
    return bernoulli_run(GreedyScheduler(), plan)


class TestAccountability:
    def test_serialize_round_trip(self, tmp_path):
        g, trace = faulted_trace()
        path = tmp_path / "trace.json"
        save_trace(trace, str(path))
        loaded = load_trace(str(path))
        assert loaded.faults == trace.faults
        assert loaded.reschedules == trace.reschedules
        assert canonical(loaded) == canonical(trace)
        assert certify_trace(g, loaded) == []

    def test_unexplained_slack_detected(self):
        """Slowing a leg without a matching fault record must trip the
        per-object fault-slack reconciliation."""
        g, trace = faulted_trace()
        leg = trace.legs[0]
        trace.legs[0] = leg.__class__(
            leg.oid, leg.depart_time, leg.src, leg.dst, leg.arrive_time + 2
        )
        issues = certify_trace(g, trace, raise_on_failure=False)
        assert any(i.kind == "fault-slack" for i in issues)

    def test_inflated_fault_record_detected(self):
        """Inflating a delay record (claiming more slack than the legs
        show) is just as dishonest as hiding one."""
        g, trace = faulted_trace()
        idx, rec = next(
            (i, f) for i, f in enumerate(trace.faults) if f.kind == "delay"
        )
        trace.faults[idx] = FaultRecord(rec.kind, rec.time, rec.node, rec.oid,
                                        rec.extra + 3)
        issues = certify_trace(g, trace, raise_on_failure=False)
        assert any(i.kind == "fault-slack" for i in issues)

    def test_faster_than_physics_still_caught_under_faults(self):
        g, trace = faulted_trace()
        leg = trace.legs[0]
        trace.legs[0] = leg.__class__(
            leg.oid, leg.depart_time, leg.src, leg.dst, leg.depart_time
        )
        issues = certify_trace(g, trace, raise_on_failure=False)
        assert any(i.kind == "leg-speed" for i in issues)

    def test_execution_before_last_reschedule_detected(self):
        g, trace = faulted_trace()
        r = trace.reschedules[0]
        trace.reschedules[0] = RescheduleRecord(
            r.tid, trace.txns[r.tid].exec_time + 5,
            r.old_exec, r.new_exec, r.backoff, r.missing,
        )
        issues = certify_trace(g, trace, raise_on_failure=False)
        assert any(i.kind == "reschedule" for i in issues)

    def test_backward_reschedule_detected(self):
        g, trace = faulted_trace()
        r = trace.reschedules[0]
        trace.reschedules[0] = RescheduleRecord(
            r.tid, r.time, r.old_exec, max(0, r.time - 3), r.backoff, r.missing,
        )
        issues = certify_trace(g, trace, raise_on_failure=False)
        assert any(i.kind == "reschedule" for i in issues)
