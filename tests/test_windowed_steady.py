"""Tests for the windowed scheduler and steady-state analytics."""

import pytest

from repro.analysis import (
    response_time_series,
    run_experiment,
    saturation_point,
    sliding_window_throughput,
    throughput,
)
from repro.core import BucketScheduler, GreedyScheduler, WindowedBatchScheduler
from repro.network import topologies
from repro.offline import ColoringBatchScheduler
from repro.sim.transactions import TxnSpec
from repro.workloads import ClosedLoopWorkload, ManualWorkload, OnlineWorkload


class TestWindowedScheduler:
    def test_invalid_window(self):
        with pytest.raises(ValueError):
            WindowedBatchScheduler(ColoringBatchScheduler(), window=0)

    def test_arrivals_wait_for_window_close(self):
        g = topologies.clique(6)
        specs = [TxnSpec(1, 2, (0,))]
        wl = ManualWorkload({0: 2}, specs)
        sched = WindowedBatchScheduler(ColoringBatchScheduler(), window=10)
        res = run_experiment(g, sched, wl)
        rec = res.trace.txns[0]
        assert rec.schedule_time == 10  # waited for the window close
        assert sched.window_log == [(10, 1)]

    def test_window_boundary_arrival(self):
        g = topologies.clique(6)
        wl = ManualWorkload({0: 2}, [TxnSpec(10, 2, (0,))])
        sched = WindowedBatchScheduler(ColoringBatchScheduler(), window=10)
        res = run_experiment(g, sched, wl)
        assert res.trace.txns[0].schedule_time == 10  # closes at its own step

    def test_feasible_online(self):
        g = topologies.grid([4, 4])
        wl = OnlineWorkload.bernoulli(g, num_objects=6, k=2, rate=0.06, horizon=50, seed=3)
        res = run_experiment(g, WindowedBatchScheduler(ColoringBatchScheduler(), window=8), wl)
        assert res.trace.num_txns == wl.num_txns

    def test_bucket_beats_windowed_on_light_txns(self):
        """The paper's point for exponential levels: an unconflicted txn
        should not wait for a window."""
        g = topologies.clique(8)
        specs = [TxnSpec(1, i, (i,)) for i in range(4)]  # disjoint objects
        placement = {i: i for i in range(4)}
        bucket = run_experiment(
            g, BucketScheduler(ColoringBatchScheduler()),
            ManualWorkload(placement, specs),
        )
        windowed = run_experiment(
            g, WindowedBatchScheduler(ColoringBatchScheduler(), window=16),
            ManualWorkload(placement, specs),
        )
        assert bucket.metrics.mean_latency < windowed.metrics.mean_latency


class TestSteadyState:
    def make_trace(self):
        g = topologies.clique(8)
        wl = ClosedLoopWorkload(g, num_objects=6, k=2, rounds=6, seed=4)
        return run_experiment(g, GreedyScheduler(), wl).trace

    def test_throughput_positive(self):
        trace = self.make_trace()
        tp = throughput(trace)
        assert tp > 0
        # sanity: bounded by txns/horizon ignoring warmup entirely
        assert tp <= trace.num_txns

    def test_empty_trace(self):
        from repro.sim.trace import ExecutionTrace

        empty = ExecutionTrace("t", {})
        assert throughput(empty) == 0.0
        assert sliding_window_throughput(empty, 5) == []
        assert response_time_series(empty) == []
        assert saturation_point([]) is None

    def test_sliding_windows_cover_all_commits(self):
        trace = self.make_trace()
        windows = sliding_window_throughput(trace, window=10)
        total = sum(rate * 10 for _, rate in windows)
        assert round(total) == trace.num_txns

    def test_response_series_buckets(self):
        trace = self.make_trace()
        series = response_time_series(trace, buckets=5)
        assert series
        assert all(v >= 1 for _, v in series)

    def test_saturation_detection(self):
        series = [(10, 2.0), (20, 2.5), (30, 6.0), (40, 9.0)]
        assert saturation_point(series, factor=2.0) == 30
        assert saturation_point([(10, 2.0), (20, 2.1)], factor=2.0) is None
