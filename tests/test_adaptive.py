"""Tests for the adaptive scheduler and its topology dispatch."""

import pytest

from repro.analysis import run_experiment
from repro.core import AdaptiveScheduler, pick_batch_scheduler
from repro.network import topologies
from repro.offline import (
    ClusterBatchScheduler,
    ColoringBatchScheduler,
    LineBatchScheduler,
    StarBatchScheduler,
)
from repro.workloads import OnlineWorkload


class TestPickBatchScheduler:
    def test_cluster_layout(self):
        g = topologies.cluster_graph(3, 4, gamma=6)
        assert isinstance(pick_batch_scheduler(g), ClusterBatchScheduler)

    def test_star_layout(self):
        g = topologies.star_graph(3, 4)
        assert isinstance(pick_batch_scheduler(g), StarBatchScheduler)

    def test_line_by_name(self):
        assert isinstance(pick_batch_scheduler(topologies.line(8)), LineBatchScheduler)
        assert isinstance(pick_batch_scheduler(topologies.ring(8)), LineBatchScheduler)

    def test_generic_fallback(self):
        assert isinstance(pick_batch_scheduler(topologies.hypercube(3)), ColoringBatchScheduler)


class TestAdaptiveChoice:
    @pytest.mark.parametrize(
        "graph,expected",
        [
            (topologies.clique(16), "greedy"),
            (topologies.hypercube(4), "greedy"),
            (topologies.line(64), "bucket(line-sweep)"),
            (topologies.star_graph(4, 8), "bucket(star-banded)"),
            (topologies.cluster_graph(4, 4, gamma=16), "bucket(cluster-banded)"),
        ],
        ids=lambda x: x if isinstance(x, str) else x.name,
    )
    def test_regime_choice(self, graph, expected):
        sched = AdaptiveScheduler()
        wl = OnlineWorkload.bernoulli(graph, num_objects=4, k=2, rate=0.04, horizon=20, seed=0)
        run_experiment(graph, sched, wl)
        assert sched.choice == expected

    def test_feasible_both_regimes(self):
        for graph in (topologies.clique(12), topologies.line(48)):
            wl = OnlineWorkload.bernoulli(graph, num_objects=6, k=2, rate=0.05, horizon=40, seed=1)
            res = run_experiment(graph, AdaptiveScheduler(), wl)
            assert res.trace.num_txns == wl.num_txns

    def test_threshold_factor(self):
        g = topologies.grid([4, 4])  # n=16, D=6, log2(16)=4
        a = AdaptiveScheduler(threshold_factor=1.0)  # 6 > 4 -> bucket
        wl = OnlineWorkload.bernoulli(g, num_objects=4, k=2, rate=0.05, horizon=20, seed=2)
        run_experiment(g, a, wl)
        assert a.choice.startswith("bucket")
        b = AdaptiveScheduler(threshold_factor=2.0)  # 6 <= 8 -> greedy
        wl = OnlineWorkload.bernoulli(g, num_objects=4, k=2, rate=0.05, horizon=20, seed=2)
        run_experiment(g, b, wl)
        assert b.choice == "greedy"
