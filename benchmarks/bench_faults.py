"""Fault degradation — what crash/drop/delay faults cost a schedule.

Sweeps the drop probability (with and without a node crash) on the grid
with the greedy scheduler and reports makespan inflation against the
fault-free baseline, plus the recovery effort (reschedules, re-requests,
deepest backoff).  Every faulted trace is still certified: the certifier
reconciles each step of leg slack against the trace's fault records, so
the degradation numbers are as trustworthy as the reliable-model ones.
"""

import pytest

from _util import emit, once
from repro.core import GreedyScheduler
from repro.faults import FaultPlan
from repro.network import topologies
from repro.obs import CountersProbe
from repro.sim import SimConfig, Simulator, certify_trace
from repro.workloads import OnlineWorkload


def run_faulted(drop, crashes, seed=7):
    g = topologies.grid([4, 4])
    wl = OnlineWorkload.bernoulli(
        g, num_objects=8, k=2, rate=1.5 / g.num_nodes, horizon=50, seed=1
    )
    plan = None
    if drop or crashes:
        plan = FaultPlan.random(
            seed, num_nodes=g.num_nodes, horizon=50,
            drop_prob=drop, crash_count=crashes, crash_len=8,
        )
    probe = CountersProbe()
    cfg = SimConfig(faults=plan, probe=probe)
    trace = Simulator(g, GreedyScheduler(), wl, config=cfg).run()
    certify_trace(g, trace)
    return trace, probe.counters


@pytest.mark.benchmark(group="faults")
def test_fault_degradation_sweep(benchmark):
    rows = []
    base = None
    for crashes in (0, 1):
        for drop in (0.0, 0.05, 0.1):
            if crashes == 0 and drop == 0.0:
                label = "none"
            else:
                label = f"drop={drop}" + (",crash" if crashes else "")
            trace, c = run_faulted(drop, crashes)
            if base is None:
                base = trace.makespan()
            assert all(r.exec_time >= 0 for r in trace.txns.values())  # liveness
            rows.append([
                label,
                trace.num_txns,
                trace.makespan(),
                round(trace.makespan() / max(1, base), 2),
                c.get("faults.dropped", 0),
                c.get("recovery.reschedules", 0),
                c.get("recovery.rerequests", 0),
                c.get("recovery.backoff_max", 0),
            ])
    once(benchmark, lambda: run_faulted(0.1, 1, seed=8))
    emit(
        "Fault degradation — makespan inflation vs fault-free baseline "
        "(greedy, grid-4x4)",
        ["faults", "txns", "makespan", "inflation", "drops",
         "reschedules", "rerequests", "max backoff"],
        rows,
    )


@pytest.mark.benchmark(group="faults")
def test_fault_recovery_across_seeds(benchmark):
    """Recovery effort across the CI fault-matrix seeds: every seeded
    crash + 10% drop run commits everything, at bounded backoff."""
    rows = []
    for seed in (3, 7, 11, 23, 42):
        trace, c = run_faulted(0.1, 1, seed=seed)
        assert all(r.exec_time >= 0 for r in trace.txns.values())
        rows.append([
            seed,
            trace.num_txns,
            trace.makespan(),
            c.get("recovery.reschedules", 0),
            c.get("recovery.backoff_max", 0),
        ])
    once(benchmark, lambda: run_faulted(0.1, 1, seed=3))
    emit(
        "Fault recovery across seeds (drop=0.1 + one crash, greedy, grid-4x4)",
        ["seed", "txns", "makespan", "reschedules", "max backoff"],
        rows,
    )
