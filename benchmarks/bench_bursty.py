"""E26 — Burst tolerance: schedulers under on/off arrivals.

Open-loop Bernoulli traffic hides a failure mode: bursts.  The on/off
workload delivers batch-like contention spikes with no warning; the
response-time series shows who absorbs them (drains the backlog within
the burst) and who saturates.  FIFO saturates immediately; greedy and the
bucket conversion absorb the bursts at these loads.
"""

import pytest

from _util import emit, once
from repro.analysis import (
    response_time_series,
    run_experiment,
    saturation_point,
)
from repro.baselines import FifoSerialScheduler
from repro.core import BucketScheduler, GreedyScheduler
from repro.network import topologies
from repro.offline import ColoringBatchScheduler
from repro.workloads import OnlineWorkload


def bursty_wl(g, seed=2):
    return OnlineWorkload.bursty(
        g, num_objects=10, k=2, horizon=160, seed=seed,
        burst_rate=0.25, idle_rate=0.005, mean_burst=10, mean_idle=30,
    )


@pytest.mark.benchmark(group="E26-bursty")
def test_e26_burst_tolerance(benchmark):
    rows = []
    g = topologies.grid([5, 5])
    for name, mk in [
        ("greedy", lambda: GreedyScheduler()),
        ("bucket", lambda: BucketScheduler(ColoringBatchScheduler())),
        ("fifo", lambda: FifoSerialScheduler()),
    ]:
        res = run_experiment(g, mk(), bursty_wl(g))
        series = response_time_series(res.trace, buckets=8)
        # every scheduler's latency spikes inside a burst (saturation_point
        # fires for all — bursts are bursts); the differentiator is
        # whether the backlog DRAINS: the final bucket's latency returns
        # near the pre-burst level.
        recovers = bool(series) and series[-1][1] <= 3.0 * max(1.0, series[0][1])
        rows.append(
            [
                name,
                res.metrics.num_txns,
                res.makespan,
                round(res.metrics.mean_latency, 1),
                round(res.metrics.p99_latency, 1),
                "yes" if recovers else "no",
            ]
        )
    fifo = rows[-1]
    greedy = rows[0]
    assert fifo[3] > 3 * greedy[3]  # FIFO pays heavily for bursts
    assert greedy[5] == "yes"  # the scheduled system drains its backlog
    once(benchmark, lambda: run_experiment(g, GreedyScheduler(), bursty_wl(g, seed=3)))
    emit(
        "E26 burst tolerance — on/off arrivals on grid-5x5",
        ["scheduler", "txns", "makespan", "mean-lat", "p99-lat", "drains?"],
        rows,
    )