"""E24 — Scheduled (pessimistic, conflict-free) vs optimistic
(acquire/abort/retry) execution.

The paper's implicit motivation, measured: as contention rises (k grows,
object pool shrinks), optimistic execution pays in aborts and wasted
shipping while conflict-free scheduling keeps its makespan.  The table
sweeps the contention knob on the clique and the grid.
"""

import pytest

from _util import emit, once
from repro.analysis import run_experiment
from repro.baselines import OptimisticDTMSimulator
from repro.core import GreedyScheduler
from repro.network import topologies
from repro.workloads import BatchWorkload


def pair(graph, num_objects, k, seed=0):
    mk = lambda: BatchWorkload.uniform(graph, num_objects=num_objects, k=k, seed=seed)
    scheduled = run_experiment(graph, GreedyScheduler(), mk())
    optimistic = OptimisticDTMSimulator(graph, mk(), seed=1).run()
    return scheduled, optimistic


@pytest.mark.benchmark(group="E24-optimistic")
def test_e24_scheduled_vs_optimistic(benchmark):
    rows = []
    for name, graph in [("clique-16", topologies.clique(16)), ("grid-4x4", topologies.grid([4, 4]))]:
        for num_objects, k in [(16, 1), (8, 2), (4, 2), (4, 3)]:
            sched, opt = pair(graph, num_objects, k)
            gain = opt.makespan() / max(1, sched.makespan)
            rows.append(
                [
                    name,
                    f"{num_objects}obj/k={k}",
                    sched.makespan,
                    opt.makespan(),
                    round(gain, 2),
                    opt.meta["aborts"],
                    opt.meta["wasted_travel"],
                ]
            )
            # conflict-free scheduling never loses to optimistic execution
            assert sched.makespan <= opt.makespan()
    once(benchmark, lambda: pair(topologies.clique(16), 4, 2, seed=5))
    emit(
        "E24 scheduled vs optimistic — makespan and abort bill by contention",
        ["topology", "contention", "scheduled-mk", "optimistic-mk",
         "optimistic/scheduled", "aborts", "wasted-travel"],
        rows,
    )
