"""E13 — Congestion (the paper's Section VI open question).

The base model assumes links of unbounded capacity.  We bound per-node
egress (at most C objects departing a node per step) and measure how much
the congestion-oblivious schedules degrade, and how much scheduling slack
(pessimistic constraint inflation) buys the guarantee back.

Reported per (topology, capacity): violations logged by the engine (missed
deadlines, executions deferred), makespan inflation over the uncongested
run, and the slack level that eliminates violations entirely.
"""

import pytest

from _util import emit, once
from repro.core import GreedyScheduler
from repro.network import topologies
from repro.sim.engine import Simulator
from repro.workloads import OnlineWorkload, hotspot_workload


def run_congested(graph, capacity, slack, seed=0):
    wl = hotspot_workload(graph, num_cold_objects=4, k_cold=1, seed=seed)
    sim = Simulator(
        graph,
        GreedyScheduler(weight_slack=slack),
        wl,
        node_egress_capacity=capacity,
        strict=False,
    )
    return sim.run()


@pytest.mark.benchmark(group="E13-congestion")
def test_e13_congestion_impact_and_slack(benchmark):
    rows = []
    for name, graph in [
        ("clique-16", topologies.clique(16)),
        ("grid-4x4", topologies.grid([4, 4])),
        ("line-16", topologies.line(16)),
    ]:
        base = run_congested(graph, capacity=None, slack=0)
        assert base.violations == []
        for cap in (2, 1):
            congested = run_congested(graph, capacity=cap, slack=0)
            slacked = None
            for slack in (1, 2, 4, 8):
                trial = run_congested(graph, capacity=cap, slack=slack)
                if not trial.violations:
                    slacked = (slack, trial.makespan())
                    break
            rows.append(
                [
                    name,
                    cap,
                    len(congested.violations),
                    base.makespan(),
                    congested.makespan(),
                    round(congested.makespan() / max(1, base.makespan()), 2),
                    slacked[0] if slacked else ">8",
                    slacked[1] if slacked else "-",
                ]
            )
            # congestion must never break completion, only delay it
            assert len(congested.txns) == len(base.txns)
    once(benchmark, lambda: run_congested(topologies.grid([4, 4]), 1, 0, seed=1))
    emit(
        "E13 congestion — bounded egress capacity (Section VI open question)",
        ["topology", "cap", "violations", "base-mk", "congested-mk", "inflation",
         "slack-to-clean", "slacked-mk"],
        rows,
    )
