"""Large-topology smoke: huge graphs must run without a distance matrix.

Not a throughput bench — a memory/feasibility guard for the implicit
distance oracles.  A full all-pairs cache for n = 10,000 nodes would cost
~760 MiB (``estimate_matrix_bytes``) before the simulator even starts, so
this script runs a short windowed-scheduler experiment on a 100x100 grid
and a 10k-node torus, then touches 100k-node variants, under a hard
peak-RSS ceiling and a wall-clock budget.  If anyone reintroduces an
eager per-row Dijkstra on the oracle path, the RSS assert trips long
before CI times out.

Run directly (exit code is the verdict):

    PYTHONPATH=src python benchmarks/smoke_large_topology.py
"""

import resource
import sys
import time

from repro.core import WindowedBatchScheduler
from repro.network import topologies
from repro.network.oracles import estimate_matrix_bytes
from repro.offline import ColoringBatchScheduler
from repro.sim import Simulator
from repro.workloads import OnlineWorkload

#: peak-RSS ceiling, MiB.  The n=10k full matrix alone would be ~760 MiB;
#: the whole smoke must fit comfortably below that.
RSS_CEILING_MIB = 300
#: wall-clock budget for the full script, seconds (CI adds its own timeout)
WALL_BUDGET_S = 120


def peak_rss_mib() -> float:
    # ru_maxrss is KiB on Linux, bytes on macOS
    rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":
        rss //= 1024
    return rss / 1024.0


def run_windowed(g, horizon, rate, seed=0):
    wl = OnlineWorkload.bernoulli(
        g, num_objects=64, k=2, rate=rate, horizon=horizon, seed=seed
    )
    sched = WindowedBatchScheduler(ColoringBatchScheduler(), window=4)
    trace = Simulator(g, sched, wl).run()
    assert all(r.exec_time >= r.gen_time for r in trace.txns.values())
    return trace


def main() -> int:
    t0 = time.perf_counter()

    # -- short windowed runs at n = 10,000 --------------------------------
    for g, rate in [
        (topologies.grid([100, 100]), 0.002),
        (topologies.torus([100, 100]), 0.002),
    ]:
        assert g.num_nodes == 10_000
        assert g.oracle is not None, f"{g.name}: oracle missing"
        trace = run_windowed(g, horizon=12, rate=rate)
        assert trace.num_txns > 0, f"{g.name}: workload generated nothing"
        assert not g._dist, f"{g.name}: Dijkstra rows materialised"
        print(f"{g.name}: {trace.num_txns} txns, makespan {trace.makespan()}, "
              f"peak RSS {peak_rss_mib():.1f} MiB")

    # -- n = 100,000: construction + point queries stay implicit ----------
    for g in (topologies.grid([1000, 100]), topologies.torus([100, 100, 10])):
        assert g.num_nodes == 100_000
        assert g.distance(0, g.num_nodes - 1) > 0
        assert g.diameter() > 0
        assert not g._dist, f"{g.name}: Dijkstra rows materialised"
        print(f"{g.name}: diameter {g.diameter()}, matrix would be "
              f"{estimate_matrix_bytes(g.num_nodes) / 2**30:.1f} GiB, "
              f"peak RSS {peak_rss_mib():.1f} MiB")

    wall = time.perf_counter() - t0
    rss = peak_rss_mib()
    print(f"total: {wall:.1f}s wall, {rss:.1f} MiB peak RSS")
    assert rss < RSS_CEILING_MIB, (
        f"peak RSS {rss:.1f} MiB over the {RSS_CEILING_MIB} MiB ceiling — "
        "something is materialising per-row distances on huge graphs"
    )
    assert wall < WALL_BUDGET_S, f"wall clock {wall:.1f}s over budget"
    return 0


if __name__ == "__main__":
    sys.exit(main())
