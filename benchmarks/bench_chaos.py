"""Chaos-harness throughput and monitor overhead.

Two numbers the chaos layer must keep honest: how many fully monitored
episodes per second a sweep sustains (CI budgets the nightly
``chaos-smoke`` job against this), and what the every-step
:class:`~repro.chaos.invariants.InvariantMonitor` costs on top of a bare
run (it re-derives the engine's safety invariants from scratch, so its
overhead is the price of continuous verification).  Both land in
``BENCH_chaos.json``: ``episodes_per_sec`` and ``monitor_overhead_pct``.
"""

import time

import pytest

from _util import emit, once
from repro.chaos import InvariantMonitor, run_sweep
from repro.core import GreedyScheduler
from repro.faults import FaultPlan
from repro.network import topologies
from repro.sim import SimConfig, Simulator
from repro.workloads import OnlineWorkload

EPISODES = 24


def timed_sweep():
    t0 = time.perf_counter()
    res = run_sweep(EPISODES, seed=7, topology="ring:10", horizon=30)
    secs = time.perf_counter() - t0
    assert res.ok, [v.violation for v in res.violations]
    return res, secs


def monitored_run(monitor):
    g = topologies.grid([4, 4])
    wl = OnlineWorkload.bernoulli(
        g, num_objects=8, k=2, rate=1.5 / g.num_nodes, horizon=50, seed=1
    )
    plan = FaultPlan.random(
        7, num_nodes=g.num_nodes, horizon=50,
        drop_prob=0.05, crash_count=1, crash_len=8,
        partition_count=1, partition_len=8,
        edges=[(u, v) for u, v, _ in g.edges()],
    )
    probe = InvariantMonitor() if monitor else None
    cfg = SimConfig(faults=plan, probe=probe)
    return Simulator(g, GreedyScheduler(), wl, config=cfg).run()


@pytest.mark.benchmark(group="chaos")
def test_chaos_episode_throughput(benchmark):
    res, secs = timed_sweep()
    summary = res.summary()
    eps = EPISODES / secs
    once(benchmark, lambda: run_sweep(4, seed=9, topology="ring:10", horizon=30))
    emit(
        f"Chaos sweep throughput ({EPISODES} episodes, ring-10, monitors on)",
        ["episodes", "seconds", "episodes/sec", "committed",
         "invariant checks", "violations"],
        [[EPISODES, round(secs, 3), round(eps, 2), summary["committed"],
          summary["invariant_checks"], summary["violations"]]],
        extra={"episodes_per_sec": round(eps, 3)},
    )


@pytest.mark.benchmark(group="chaos")
def test_monitor_overhead(benchmark):
    # Best-of-3 for each mode: the runs are deterministic, so the spread
    # is pure timer noise and the minimum is the honest cost.
    def best(monitor):
        times = []
        for _ in range(3):
            t0 = time.perf_counter()
            monitored_run(monitor)
            times.append(time.perf_counter() - t0)
        return min(times)

    bare = best(False)
    monitored = best(True)
    overhead = 100.0 * (monitored - bare) / bare
    once(benchmark, lambda: monitored_run(True))
    emit(
        "Invariant-monitor overhead (greedy, grid-4x4, full fault mix)",
        ["run", "seconds"],
        [["bare", round(bare, 4)],
         ["monitored", round(monitored, 4)],
         ["overhead %", round(overhead, 1)]],
        extra={"monitor_overhead_pct": round(overhead, 2)},
    )
