"""E25 — Why exponential buckets: Algorithm 2 vs fixed-window rebatching.

Fixed-window batching is the practitioner's default; the paper's bucket
levels are its principled replacement.  Two measurements:

1. latency of *lightly-conflicting* transactions — windows make everyone
   wait ~window/2; buckets let low-level transactions go immediately;
2. steady-state throughput under closed-loop load — comparable, so the
   bucket design's latency win is not bought with throughput.
"""

import pytest

from _util import emit, once
from repro.analysis import run_experiment, throughput
from repro.core import BucketScheduler, WindowedBatchScheduler
from repro.network import topologies
from repro.offline import ColoringBatchScheduler, LineBatchScheduler
from repro.workloads import ClosedLoopWorkload, OnlineWorkload


@pytest.mark.benchmark(group="E25-windowed")
def test_e25_bucket_vs_windows(benchmark):
    rows = []
    for name, g, batch_cls in [
        ("line-32", topologies.line(32), LineBatchScheduler),
        ("grid-5x5", topologies.grid([5, 5]), ColoringBatchScheduler),
    ]:
        mk = lambda: OnlineWorkload.bernoulli(
            g, num_objects=10, k=2, rate=1.0 / g.num_nodes, horizon=80, seed=6
        )
        bucket = run_experiment(g, BucketScheduler(batch_cls()), mk())
        for window in (4, 16, 64):
            windowed = run_experiment(
                g, WindowedBatchScheduler(batch_cls(), window=window), mk()
            )
            rows.append(
                [
                    name,
                    f"window-{window}",
                    windowed.makespan,
                    round(windowed.metrics.mean_latency, 1),
                    round(windowed.metrics.p99_latency, 1),
                ]
            )
        rows.append(
            [
                name,
                "bucket (Alg.2)",
                bucket.makespan,
                round(bucket.metrics.mean_latency, 1),
                round(bucket.metrics.p99_latency, 1),
            ]
        )
    once(benchmark, lambda: run_experiment(
        topologies.line(32),
        WindowedBatchScheduler(LineBatchScheduler(), window=16),
        OnlineWorkload.bernoulli(topologies.line(32), 10, 2, rate=1 / 32, horizon=80, seed=7),
    ))
    emit(
        "E25 Algorithm 2 vs fixed-window rebatching",
        ["topology", "scheduler", "makespan", "mean-lat", "p99-lat"],
        rows,
    )


@pytest.mark.benchmark(group="E25-windowed")
def test_e25_throughput_not_sacrificed(benchmark):
    g = topologies.clique(12)
    rows = []
    tps = {}
    for name, sched_fn in [
        ("bucket", lambda: BucketScheduler(ColoringBatchScheduler())),
        ("window-16", lambda: WindowedBatchScheduler(ColoringBatchScheduler(), window=16)),
    ]:
        wl = ClosedLoopWorkload(g, num_objects=8, k=2, rounds=6, seed=8)
        res = run_experiment(g, sched_fn(), wl)
        tps[name] = throughput(res.trace)
        rows.append([name, res.metrics.num_txns, res.makespan,
                     round(tps[name], 3), round(res.metrics.mean_latency, 1)])
    # the bucket design must not cost steady-state throughput
    assert tps["bucket"] >= 0.8 * tps["window-16"]
    once(benchmark, lambda: run_experiment(
        g, BucketScheduler(ColoringBatchScheduler()),
        ClosedLoopWorkload(g, num_objects=8, k=2, rounds=4, seed=9),
    ))
    emit(
        "E25b closed-loop throughput — bucket vs windows (clique-12)",
        ["scheduler", "txns", "makespan", "throughput", "mean-lat"],
        rows,
    )
