"""E1 — Theorem 1/2: greedy executes within its dependency-degree bound.

For every transaction the scheduler logs its color and the (floor-shifted)
Lemma 1 / Lemma 2 bound; the table reports the worst observed color-to-
bound slack per topology.  The assertion `color <= bound` *is* Theorem 1's
statement instantiated per transaction.
"""

import pytest

from _util import emit, once
from repro.analysis import run_experiment
from repro.core import GreedyScheduler
from repro.network import topologies
from repro.workloads import OnlineWorkload


CONFIGS = [
    ("clique", lambda: topologies.clique(32), None),
    ("clique-beta1", lambda: topologies.clique(32), 1),
    ("hypercube", lambda: topologies.hypercube(5), None),
    ("hypercube-beta", lambda: topologies.hypercube(5), 5),
    ("grid-4x8", lambda: topologies.grid([4, 8]), None),
    ("butterfly-3", lambda: topologies.butterfly(3), None),
]


def run_config(make_graph, beta, seed=0):
    g = make_graph()
    wl = OnlineWorkload.bernoulli(g, num_objects=12, k=3, rate=0.05, horizon=60, seed=seed)
    sched = GreedyScheduler(uniform_beta=beta)
    res = run_experiment(g, sched, wl)
    return g, sched, res


@pytest.mark.benchmark(group="E1-greedy-bound")
def test_e1_greedy_latency_within_theorem_bound(benchmark):
    rows = []
    for name, make_graph, beta in CONFIGS:
        g, sched, res = run_config(make_graph, beta)
        assert sched.color_log, "no transactions scheduled"
        worst_slack = 0.0
        violations = 0
        for tid, color, bound in sched.color_log:
            if color > bound:
                violations += 1
            worst_slack = max(worst_slack, color / max(1, bound))
        assert violations == 0
        rows.append(
            [name, g.num_nodes, res.metrics.num_txns, res.metrics.max_latency,
             max(c for _, c, _ in sched.color_log),
             max(b for _, _, b in sched.color_log),
             round(worst_slack, 3)]
        )
    once(benchmark, lambda: run_config(CONFIGS[0][1], CONFIGS[0][2], seed=1))
    emit(
        "E1  Theorem 1/2 — greedy color vs dependency bound (color<=bound always)",
        ["topology", "n", "txns", "max-lat", "max-color", "max-bound", "worst c/b"],
        rows,
    )
