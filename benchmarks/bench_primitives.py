"""E19 — Microbenchmarks of the core primitives.

Real timing benchmarks (multiple rounds, pytest-benchmark statistics) for
the operations every scheduler leans on: the coloring interval sweep,
cached shortest-path queries, metric MSTs, padded decompositions, and a
full greedy scheduling step.  These guard against performance regressions
in the hot paths the guides told us to keep lean.
"""

import numpy as np
import pytest

from repro.core.coloring import min_valid_color, min_valid_color_multiple
from repro.cover.decomposition import padded_decomposition
from repro.network import topologies


@pytest.fixture(scope="module")
def big_constraints():
    rng = np.random.default_rng(0)
    return [(int(c), int(w)) for c, w in zip(rng.integers(0, 500, 200), rng.integers(1, 20, 200))]


@pytest.mark.benchmark(group="E19-primitives")
def test_perf_min_valid_color(benchmark, big_constraints):
    result = benchmark(min_valid_color, big_constraints)
    assert result >= 1


@pytest.mark.benchmark(group="E19-primitives")
def test_perf_min_valid_color_multiple(benchmark, big_constraints):
    result = benchmark(min_valid_color_multiple, big_constraints, 4)
    assert result % 4 == 0


@pytest.mark.benchmark(group="E19-primitives")
def test_perf_distance_cached(benchmark):
    g = topologies.grid([16, 16])
    g.distances_from(0)  # warm the cache

    def query():
        total = 0
        for v in range(0, 256, 5):
            total += g.distance(0, v)
        return total

    assert benchmark(query) > 0


@pytest.mark.benchmark(group="E19-primitives")
def test_perf_metric_mst(benchmark):
    g = topologies.grid([12, 12])
    nodes = list(range(0, 144, 7))
    result = benchmark(g.metric_mst_weight, nodes)
    assert result > 0


@pytest.mark.benchmark(group="E19-primitives")
def test_perf_padded_decomposition(benchmark):
    g = topologies.grid([8, 8])

    def decompose():
        rng = np.random.default_rng(1)
        return padded_decomposition(g, radius=10, pad=1, rng=rng)

    clusters, padded, _ = benchmark(decompose)
    assert clusters


@pytest.mark.benchmark(group="E19-primitives")
def test_perf_greedy_batch_step(benchmark):
    from repro.analysis import run_experiment
    from repro.core import GreedyScheduler
    from repro.workloads import BatchWorkload

    g = topologies.clique(64)

    def run():
        wl = BatchWorkload.uniform(g, num_objects=32, k=3, seed=2)
        return run_experiment(g, GreedyScheduler(), wl, compute_ratios=False)

    res = benchmark.pedantic(run, rounds=3, iterations=1)
    assert res.trace.num_txns == 64
