"""E12 — Sparse cover quality (the Section V substrate).

Per topology: number of layers H1, max sub-layers per layer H2 (must be
O(log n)), and per layer the worst cluster weak diameter against the
f(l) = O(2**l log n) guarantee.  `verify()` re-checks every structural
property (partitions, padding, leader membership).
"""

import math

import pytest

from _util import emit, once
from repro.cover import build_sparse_cover
from repro.network import topologies


GRAPHS = [
    lambda: topologies.line(48),
    lambda: topologies.grid([6, 6]),
    lambda: topologies.clique(24),
    lambda: topologies.cluster_graph(4, 4, gamma=8),
    lambda: topologies.star_graph(5, 5),
    lambda: topologies.hypercube(5),
]


@pytest.mark.benchmark(group="E12-sparse-cover")
def test_e12_cover_quality(benchmark):
    rows = []
    for make in GRAPHS:
        g = make()
        cover = build_sparse_cover(g, seed=0)
        assert cover.verify() == []
        logn = max(1, math.ceil(math.log2(g.num_nodes + 1)))
        worst_norm = 0.0
        for layer in range(1, cover.num_layers):
            bound = 2 * (1 << layer) * logn  # weak diameter <= 2*radius
            worst = 0
            for part in cover.layers[layer]:
                for c in part:
                    if len(c.nodes) > 1:
                        worst = max(worst, cover.cluster_diameter(c))
            assert worst <= bound, f"{g.name} layer {layer}: diameter {worst} > {bound}"
            worst_norm = max(worst_norm, worst / bound)
        rows.append(
            [g.name, g.num_nodes, g.diameter(), cover.num_layers,
             cover.max_sublayers, round(worst_norm, 2)]
        )
        assert cover.max_sublayers <= 4 * logn + 8
    once(benchmark, lambda: build_sparse_cover(GRAPHS[0](), seed=1))
    emit(
        "E12 sparse cover — layers, sub-layers (H2=O(log n)), diameter vs f(l)",
        ["graph", "n", "D", "H1", "H2", "worst diam/f(l)"],
        rows,
    )


@pytest.mark.benchmark(group="E12-sparse-cover")
def test_e12b_construction_comparison(benchmark):
    """MPX exponential shifts (weak diameter) vs greedy ball carving
    (strong diameter): sub-layer counts and worst diameters."""
    rows = []
    for make in GRAPHS[:4]:
        g = make()
        for name in ("mpx", "greedy"):
            cover = build_sparse_cover(g, seed=0, construction=name)
            assert cover.verify() == []
            worst = 0
            for layer in range(1, cover.num_layers):
                for part in cover.layers[layer]:
                    for c in part:
                        if len(c.nodes) > 1:
                            worst = max(worst, cover.cluster_diameter(c))
            rows.append([g.name, name, cover.num_layers, cover.max_sublayers, worst])
    once(benchmark, lambda: build_sparse_cover(GRAPHS[1](), seed=2, construction="greedy"))
    emit(
        "E12b cover construction — MPX (weak diam) vs greedy carving (strong diam)",
        ["graph", "construction", "H1", "H2", "worst-diameter"],
        rows,
    )
