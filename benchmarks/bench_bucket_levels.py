"""E4 — Lemma 3 (bucket levels <= log2(nD)+1) and Lemma 4 (a transaction
inserted into B_i executes by t + (i+1)*2**(i+2)).

The table reports, per occupied level: how many transactions landed there,
their worst observed latency from insertion, and Lemma 4's allowance —
the slack column (observed / allowance) must stay <= 1.
"""

import math

import pytest

from _util import emit, once
from repro.analysis import run_experiment
from repro.core import BucketScheduler
from repro.network import topologies
from repro.offline import ColoringBatchScheduler, LineBatchScheduler
from repro.workloads import OnlineWorkload


def run_one(graph, batch, seed=0):
    wl = OnlineWorkload.bernoulli(graph, num_objects=8, k=2, rate=0.05, horizon=80, seed=seed)
    sched = BucketScheduler(batch)
    res = run_experiment(graph, sched, wl)
    return sched, res


@pytest.mark.benchmark(group="E4-bucket-levels")
def test_e4_lemma3_and_lemma4(benchmark):
    rows = []
    for name, graph, batch in [
        ("line-32", topologies.line(32), LineBatchScheduler()),
        ("cluster-4x4", topologies.cluster_graph(4, 4, gamma=6), ColoringBatchScheduler()),
        ("grid-5x5", topologies.grid([5, 5]), ColoringBatchScheduler()),
    ]:
        sched, res = run_one(graph, batch)
        lemma3 = math.ceil(math.log2(graph.num_nodes * graph.diameter())) + 1
        assert sched.max_level <= lemma3 + 1
        level_of = {tid: lvl for tid, lvl, _ in sched.insert_log}
        t_ins = {tid: t for tid, _, t in sched.insert_log}
        per_level = {}
        for rec in res.trace.txns.values():
            i = level_of[rec.tid]
            obs = rec.exec_time - t_ins[rec.tid]
            per_level.setdefault(i, []).append(obs)
        for i in sorted(per_level):
            allowance = (i + 1) * 2 ** (i + 2)
            worst = max(per_level[i])
            assert worst <= allowance, f"{name}: level {i} latency {worst} > {allowance}"
            rows.append(
                [name, i, len(per_level[i]), worst, allowance, round(worst / allowance, 2)]
            )
        assert max(per_level) <= lemma3
    once(benchmark, lambda: run_one(topologies.line(32), LineBatchScheduler(), seed=1))
    emit(
        "E4  Lemmas 3-4 — bucket levels and per-level latency allowance",
        ["topology", "level", "txns", "worst-latency", "lemma4-allow", "slack"],
        rows,
    )
