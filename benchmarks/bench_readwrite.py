"""E14 — Read/write extension: read sharing buys throughput.

The base model treats every access as exclusive (the master object visits
every transaction).  With read-only accesses served by copies, read-read
pairs stop conflicting and master travel collapses.  Sweep the read
fraction and report latency / travel / makespan; the expected shape is
monotone improvement with the read fraction, approaching the
communication cost of pure fan-out copies at read_fraction -> 1.
"""

import pytest

from _util import emit, once
from repro.analysis import run_experiment
from repro.core import BucketScheduler, GreedyScheduler
from repro.network import topologies
from repro.offline import ColoringBatchScheduler
from repro.workloads import OnlineWorkload, ZipfChooser


def run_rw(graph, read_fraction, seed=0):
    wl = OnlineWorkload.bernoulli(
        graph,
        num_objects=8,
        k=3,
        rate=1.2 / graph.num_nodes,
        horizon=60,
        seed=seed,
        chooser=ZipfChooser(8, 0.9),
        read_fraction=read_fraction,
    )
    return run_experiment(graph, GreedyScheduler(), wl)


@pytest.mark.benchmark(group="E14-readwrite")
def test_e14_read_fraction_sweep(benchmark):
    rows = []
    for name, graph in [("grid-5x5", topologies.grid([5, 5])), ("clique-16", topologies.clique(16))]:
        travel_at = {}
        for rf in (0.0, 0.25, 0.5, 0.75, 0.95):
            res = run_rw(graph, rf)
            travel_at[rf] = res.trace.total_object_travel()
            rows.append(
                [
                    name,
                    rf,
                    res.metrics.num_txns,
                    res.makespan,
                    round(res.metrics.mean_latency, 1),
                    res.trace.total_object_travel(),
                    res.trace.total_copy_travel(),
                    len(res.trace.copy_legs),
                ]
            )
        # master travel must fall monotonically-ish with the read share
        assert travel_at[0.95] < travel_at[0.0]
    once(benchmark, lambda: run_rw(topologies.grid([5, 5]), 0.5, seed=1))
    emit(
        "E14 read/write extension — read share vs master travel & latency",
        ["topology", "read-frac", "txns", "makespan", "mean-lat",
         "master-travel", "copy-travel", "copies"],
        rows,
    )


@pytest.mark.benchmark(group="E14-readwrite")
def test_e14_bucket_with_reads(benchmark):
    rows = []
    g = topologies.line(32)
    for rf in (0.0, 0.5, 0.9):
        wl = OnlineWorkload.bernoulli(
            g, num_objects=8, k=2, rate=0.04, horizon=80, seed=3, read_fraction=rf
        )
        res = run_experiment(g, BucketScheduler(ColoringBatchScheduler()), wl)
        rows.append(
            [rf, res.metrics.num_txns, res.makespan, round(res.metrics.mean_latency, 1),
             round(res.competitive_ratio, 2)]
        )
    once(benchmark, lambda: run_experiment(
        g,
        BucketScheduler(ColoringBatchScheduler()),
        OnlineWorkload.bernoulli(g, num_objects=8, k=2, rate=0.04, horizon=80, seed=4, read_fraction=0.5),
    ))
    emit(
        "E14b bucket scheduler under read sharing (line-32)",
        ["read-frac", "txns", "makespan", "mean-lat", "ratio"],
        rows,
    )
