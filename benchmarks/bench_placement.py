"""E22 — Initial placement optimization (the operator's knob the paper
holds fixed).

Weighted 1-median placement of each object among its accessors vs random
placement.  The optimizer provably improves its *static* objective — the
total accessor distance — which the bench asserts per instance.  Whether
that turns into end-to-end travel/makespan gains is schedule-dependent
(the chain of inter-requester moves dominates, and colors shift with the
new distances), so those columns are *measured honestly* and, in the
run recorded in EXPERIMENTS.md, improve on the mesh but not uniformly on
the line/cluster: the knob helps approach costs, not contention.
"""

import pytest

from _util import emit, once
from repro.analysis import optimize_placement, replace_placement, replicate, run_experiment
from repro.core import GreedyScheduler
from repro.network import topologies
from repro.workloads import OnlineWorkload


def static_cost(graph, placement, specs) -> int:
    """The optimizer's objective: total accessor distance."""
    total = 0
    for spec in specs:
        for oid in (*spec.objects, *spec.reads):
            total += graph.distance(placement[oid], spec.home)
    return total


def experiment(graph):
    def run(seed: int):
        wl = OnlineWorkload.bernoulli(
            graph, num_objects=8, k=2, rate=1.0 / graph.num_nodes, horizon=60, seed=seed
        )
        specs = wl.arrivals()
        opt_placement = optimize_placement(graph, specs)
        merged = dict(wl.initial_objects())
        merged.update(opt_placement)
        # guaranteed: the static objective never degrades
        assert static_cost(graph, merged, specs) <= static_cost(
            graph, wl.initial_objects(), specs
        )
        base = run_experiment(graph, GreedyScheduler(), wl)
        opt = run_experiment(graph, GreedyScheduler(), replace_placement(wl, opt_placement))
        return {
            "base_static": static_cost(graph, wl.initial_objects(), specs),
            "opt_static": static_cost(graph, merged, specs),
            "base_travel": base.trace.total_object_travel(),
            "opt_travel": opt.trace.total_object_travel(),
            "base_makespan": base.makespan,
            "opt_makespan": opt.makespan,
        }

    return run


@pytest.mark.benchmark(group="E22-placement")
def test_e22_placement_optimization(benchmark):
    rows = []
    for name, graph in [
        ("grid-5x5", topologies.grid([5, 5])),
        ("line-24", topologies.line(24)),
        ("cluster-3x4", topologies.cluster_graph(3, 4, gamma=6)),
    ]:
        agg = replicate(experiment(graph), seeds=range(8))
        rows.append(
            [
                name,
                round(agg["base_static"].mean, 1),
                round(agg["opt_static"].mean, 1),
                round(agg["base_travel"].mean, 1),
                round(agg["opt_travel"].mean, 1),
                round(agg["base_makespan"].mean, 1),
                round(agg["opt_makespan"].mean, 1),
            ]
        )
        assert agg["opt_static"].mean <= agg["base_static"].mean
    once(benchmark, lambda: experiment(topologies.grid([5, 5]))(99))
    emit(
        "E22 placement optimization — static objective (guaranteed) vs dynamic effects",
        ["topology", "rand-static", "median-static", "rand-travel",
         "median-travel", "rand-mk", "median-mk"],
        rows,
    )
