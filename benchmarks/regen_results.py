"""Regenerate ``results.txt`` from the committed ``BENCH_*.json`` snapshots.

``results.txt`` is a per-session log: the benchmark conftest truncates it
at session start, so after running a single bench module it holds only
that module's tables.  The committed copy should instead reflect *every*
current snapshot — this script renders each table of each
``BENCH_*.json`` (alphabetical by file, snapshot order within) into one
fresh ``results.txt``:

    PYTHONPATH=src python benchmarks/regen_results.py
"""

import glob
import json
import os

from repro.analysis import render_table

HERE = os.path.dirname(os.path.abspath(__file__))
RESULTS = os.path.join(HERE, "results.txt")


def main() -> None:
    blocks = []
    for path in sorted(glob.glob(os.path.join(HERE, "BENCH_*.json"))):
        with open(path) as fh:
            doc = json.load(fh)
        for table in doc.get("tables", []):
            blocks.append(
                render_table(table["headers"], table["rows"], title=table["title"])
            )
    with open(RESULTS, "w") as fh:
        fh.write("\n\n".join(blocks) + "\n")
    print(f"wrote {len(blocks)} tables to {RESULTS}")


if __name__ == "__main__":
    main()
