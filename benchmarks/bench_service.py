"""E-SERVICE — ingestion front-end overhead and overload degradation.

Two guard-rails for :mod:`repro.service`:

* **Admission overhead** — the front-end's per-step work (pass-through
  buffer, controller ticks, deadline heap) must cost < 5% steps/sec
  against the service-disabled baseline at a sub-capacity λ, where both
  runs admit the same transactions and the difference is pure
  bookkeeping.  Measured as the median of interleaved A/B pairs on CPU
  time (``process_time``): the container's wall clock is far too noisy
  for a best-of comparison at this granularity, and interleaving
  cancels frequency drift.

* **Graceful degradation** — at a sustained 2x-λ* overload the bounded
  queue and controller must hold goodput near capacity instead of
  collapsing: the snapshot records goodput, shed rate, deadline-hit
  rate, and p99-of-admitted per policy so the degradation frontier is
  trackable across PRs.
"""

import statistics
import time

import pytest

from _util import emit, once
from repro.analysis import run_stream
from repro.core import GreedyScheduler
from repro.network import topologies
from repro.service import POLICY_NAMES, ServiceConfig
from repro.sim import SimConfig
from repro.workloads import WorkloadSpec

TITLE = "E-SERVICE  admission overhead — fifo front-end vs disabled"
OVERLOAD_TITLE = "E-SERVICE  overload degradation — 2x λ* per policy"

#: sub-capacity sweep point: clique:16 sustains λ=0.8 comfortably at a
#: representative conflict footprint (the paper sweeps k up to 5)
N, LAM, OBJECTS, K, UNTIL = 16, 0.8, 16, 3, 600
#: the front-end may cost at most this fraction of steps/sec
OVERHEAD_CAP = 0.05
PAIRS = 15

#: true 2x-λ* overload on grid:5x5 (λ* ≈ 2 there): queue fills, sheds
#: and expiries both fire, backpressure stays engaged
OVERLOAD_LAM, OVERLOAD_UNTIL = 4.0, 400


def _spec(lam, objects=OBJECTS, k=K):
    return WorkloadSpec.make("poisson-open", seed=0, lam=lam, objects=objects, k=k)


def _run(g, cfg):
    t0 = time.process_time()
    res = run_stream(
        g, GreedyScheduler(uniform_beta=1), _spec(LAM),
        until=UNTIL, warmup=UNTIL // 4, config=cfg,
    )
    return time.process_time() - t0, res


@pytest.mark.benchmark(group="E-SERVICE-overhead")
def test_admission_overhead_under_cap(benchmark):
    g = topologies.clique(N)
    base_cfg = SimConfig()
    svc_cfg = SimConfig(service=ServiceConfig(policy="fifo", queue_cap=64))
    _run(g, base_cfg)  # warm both paths before timing
    _run(g, svc_cfg)
    base_ts, svc_ts = [], []
    base_res = svc_res = None
    for _ in range(PAIRS):
        secs, base_res = _run(g, base_cfg)
        base_ts.append(secs)
        secs, svc_res = _run(g, svc_cfg)
        svc_ts.append(secs)
    # same offered load, below capacity: nothing shed, identical commits
    assert svc_res.trace.meta["service"]["shed"] == 0
    assert svc_res.slo.committed == base_res.slo.committed
    base_med = statistics.median(base_ts)
    svc_med = statistics.median(svc_ts)
    overhead = svc_med / base_med - 1.0
    rows = [
        ["disabled", UNTIL, base_res.slo.committed,
         round(base_med * 1e3, 1), round(UNTIL / base_med, 1), "-"],
        ["fifo", UNTIL, svc_res.slo.committed,
         round(svc_med * 1e3, 1), round(UNTIL / svc_med, 1),
         f"{overhead:+.1%}"],
    ]
    once(benchmark, lambda: _run(g, svc_cfg))
    emit(
        TITLE,
        ["service", "until", "committed", "median_ms", "steps/s", "overhead"],
        rows,
        extra={
            "overhead_frac": round(overhead, 4),
            "overhead_cap": OVERHEAD_CAP,
            "pairs": PAIRS,
            "sweep": [N, LAM, OBJECTS, K, UNTIL],
        },
    )
    assert overhead < OVERHEAD_CAP, (
        f"service front-end costs {overhead:.1%} steps/sec "
        f"(cap {OVERHEAD_CAP:.0%})"
    )


@pytest.mark.benchmark(group="E-SERVICE-overload")
def test_overload_degrades_gracefully(benchmark):
    g = topologies.grid((5, 5))
    rows = []
    goodputs = {}

    def sweep():
        for policy in POLICY_NAMES:
            svc = ServiceConfig(policy=policy, queue_cap=32, deadline=40)
            res = run_stream(
                g, GreedyScheduler(uniform_beta=1),
                _spec(OVERLOAD_LAM, objects=8, k=2),
                until=OVERLOAD_UNTIL, warmup=OVERLOAD_UNTIL // 4,
                config=SimConfig(service=svc),
            )
            slo = res.slo
            meta = res.trace.meta["service"]
            goodputs[policy] = round(slo.goodput, 4)
            rows.append([
                policy, round(slo.goodput, 3), round(slo.shed_rate, 3),
                round(slo.deadline_hit_rate, 3), slo.p99_admitted,
                meta["shed"] + meta["expired"],
                "yes" if slo.stable else "NO",
            ])

    once(benchmark, sweep)
    emit(
        OVERLOAD_TITLE,
        ["policy", "goodput", "shed_rate", "deadline_hit", "p99_admitted",
         "dropped", "stable"],
        rows,
        extra={"goodput": goodputs,
               "lam": OVERLOAD_LAM, "until": OVERLOAD_UNTIL},
    )
    # the bounded queue must keep every policy's run stable under 2x
    # load, degrade by actually dropping work, and hold useful goodput
    assert all(r[-1] == "yes" for r in rows)
    assert all(r[-2] > 0 for r in rows)
    assert all(gp > 0.8 * 2.0 for gp in goodputs.values())  # ≥ 0.8·λ*
