"""E18 — Discovery ablation: idealized last-known probes vs the Arrow
spanning-tree directory.

The default Algorithm 3 discovery aims its first probe at the object's
position read from ground truth (the documented idealization).  The Arrow
mode drops the idealization: finds route along spanning-tree pointers
maintained only by object-motion events, paying tree-path latencies and
pointer-maintenance messages.  The table quantifies what that honesty
costs.
"""

import pytest

from _util import emit, once
from repro.analysis import run_experiment
from repro.core import DistributedBucketScheduler
from repro.network import topologies
from repro.offline import ColoringBatchScheduler, LineBatchScheduler
from repro.workloads import OnlineWorkload
from repro.sim import SimConfig


CONFIGS = [
    ("line-24", lambda: topologies.line(24), LineBatchScheduler),
    ("grid-5x5", lambda: topologies.grid([5, 5]), ColoringBatchScheduler),
    ("cluster-3x4", lambda: topologies.cluster_graph(3, 4, gamma=6), ColoringBatchScheduler),
]


def run_pair(make_graph, batch_cls, seed=0):
    g = make_graph()
    mk = lambda: OnlineWorkload.bernoulli(
        g, num_objects=6, k=2, rate=0.8 / g.num_nodes, horizon=3 * g.diameter() + 20, seed=seed
    )
    probe = run_experiment(
        g, DistributedBucketScheduler(batch_cls(), seed=1), mk(),
        config=SimConfig(object_speed_den=2),
    )
    arrow_sched = DistributedBucketScheduler(batch_cls(), seed=1, discovery="arrow")
    arrow = run_experiment(g, arrow_sched, mk(), config=SimConfig(object_speed_den=2))
    return g, probe, arrow, arrow_sched


@pytest.mark.benchmark(group="E18-directory")
def test_e18_discovery_ablation(benchmark):
    rows = []
    for name, make_graph, batch_cls in CONFIGS:
        g, probe, arrow, sched = run_pair(make_graph, batch_cls)
        overhead = arrow.makespan / max(1, probe.makespan)
        rows.append(
            [
                name,
                probe.metrics.num_txns,
                probe.makespan,
                arrow.makespan,
                round(overhead, 2),
                probe.metrics.messages_sent,
                arrow.metrics.messages_sent,
                sched.directory.maintenance_messages,
            ]
        )
        # honest discovery may cost, but stays within a small factor
        assert overhead <= 4.0, f"{name}: arrow overhead {overhead}"
    once(benchmark, lambda: run_pair(CONFIGS[0][1], CONFIGS[0][2], seed=2))
    emit(
        "E18 discovery ablation — idealized probe vs Arrow directory",
        ["topology", "txns", "probe-mk", "arrow-mk", "overhead",
         "probe-msgs", "arrow-msgs", "ptr-maint"],
        rows,
    )
