"""E-HOTLOOP — allocation accounting of the engine's steady-state loop.

Not a paper experiment: a guard-rail for the allocation-lean hot-loop
pass (slotted ``Message``, lazy trace stores, per-kind event counts —
docs/performance.md, "Incremental scheduling").  Wall-clock throughput is
guarded by ``bench_engine.py``; this bench guards the *allocation side*
with tracemalloc, which is deterministic for a seeded run and therefore
far less machine-sensitive than steps/sec:

* **live blocks per step** — traced blocks still alive at quiescence,
  divided by active steps.  The lazy stores keep this flat: legs and
  transaction records stay argument tuples until someone looks.
* **materialization overhead** — extra bytes after forcing every lazy
  record to materialize (what an analysis pass would pay; runs that only
  archive the trace never do).

The committed snapshot lives in ``BENCH_engine.json`` (table
``E-HOTLOOP``) alongside the throughput tables; the guard fails when
live blocks per step grow past ``GROWTH_CAP`` times the committed value.
"""

import gc
import json
import os
import sys
import tracemalloc

import pytest

from _util import RESULTS_PATH, _write_json, once
from repro.analysis import render_table
from repro.core import GreedyScheduler
from repro.network import topologies
from repro.obs import CountersProbe
from repro.sim import Simulator
from repro.workloads import OnlineWorkload

#: same shape as bench_engine's mid sweep point: dense, mostly-active run
N, HORIZON = 32, 400
TITLE = "E-HOTLOOP  allocation accounting — tracemalloc live blocks per step"
#: fail when live blocks/step grow beyond this factor of the snapshot
GROWTH_CAP = 1.4
BASELINE_PATH = os.path.join(os.path.dirname(__file__), "BENCH_engine.json")


def _run(probe=None):
    g = topologies.clique(N)
    wl = OnlineWorkload.bernoulli(
        g, num_objects=max(4, N // 2), k=2, rate=0.2, horizon=HORIZON, seed=0
    )
    return Simulator(g, GreedyScheduler(uniform_beta=1), wl, probe=probe).run()


def _committed_blocks_per_step():
    try:
        with open(BASELINE_PATH) as fh:
            doc = json.load(fh)
    except (OSError, ValueError):
        return None
    for table in doc.get("tables", []):
        if table.get("title") == TITLE:
            return (table.get("extra") or {}).get("blocks_per_step")
    return None


@pytest.mark.benchmark(group="E-HOTLOOP-alloc")
def test_hotloop_allocation_guard(benchmark):
    baseline = _committed_blocks_per_step()
    probe = CountersProbe()
    trace = _run(probe)
    steps = probe.counters["steps"]
    txns = len(trace.txns)

    gc.collect()
    tracemalloc.start()
    traced = _run()
    lazy_bytes, lazy_peak = tracemalloc.get_traced_memory()
    snap = tracemalloc.take_snapshot()
    # Force every lazy record to materialize (iteration materializes and
    # caches in place) — the cost an analysis pass pays, and only then.
    mat = (
        sum(1 for _ in traced.legs)
        + sum(1 for _ in traced.copy_legs)
        + sum(1 for _ in traced.txns.values())
    )
    full_bytes, _ = tracemalloc.get_traced_memory()
    tracemalloc.stop()

    lazy_blocks = sum(s.count for s in snap.statistics("filename"))
    blocks_per_step = round(lazy_blocks / steps, 2)
    rows = [
        ["live blocks at quiescence", lazy_blocks],
        ["active steps", steps],
        ["blocks / step", blocks_per_step],
        ["live KiB at quiescence", round(lazy_bytes / 1024, 1)],
        ["peak KiB during run", round(lazy_peak / 1024, 1)],
        ["records materialized", mat],
        ["materialization extra KiB", round((full_bytes - lazy_bytes) / 1024, 1)],
        ["vs committed blocks/step", round(blocks_per_step / baseline, 2) if baseline else "-"],
    ]
    extra = {
        "blocks_per_step": blocks_per_step,
        "growth_cap": GROWTH_CAP,
        "steps": steps,
        "txns": txns,
        "peak_kb": round(lazy_peak / 1024, 1),
        "materialize_extra_kb": round((full_bytes - lazy_bytes) / 1024, 1),
    }
    # Committed into BENCH_engine.json (the engine guard's snapshot), not
    # a separate file: one JSON carries the whole hot-loop contract.
    table = render_table(["metric", "value"], rows, title=TITLE)
    print("\n" + table + "\n", file=sys.__stdout__, flush=True)
    with open(RESULTS_PATH, "a") as fh:
        fh.write(table + "\n\n")
    _write_json("engine", TITLE, ["metric", "value"], rows, None, extra, None)

    once(benchmark, lambda: _run())
    if baseline:
        assert blocks_per_step <= GROWTH_CAP * baseline, (
            f"live blocks/step {blocks_per_step} > {GROWTH_CAP}x committed "
            f"baseline {baseline} — the hot loop got allocation-heavier"
        )
