"""E2 — Theorem 3: the greedy schedule is O(k)-competitive on the clique.

Sweep k at several clique sizes under the Section III-C closed-loop
process.  The reproduced *shape*: measured ratio grows (sub)linearly with
k and is flat in n — the ratio/k column stays bounded by a small constant
across the whole sweep.
"""

import pytest

from _util import emit, once
from repro.analysis import run_experiment
from repro.core import GreedyScheduler
from repro.network import topologies
from repro.obs import CountersProbe
from repro.workloads import ClosedLoopWorkload
from repro.sim import SimConfig


def run_one(n, k, seed=0, probe=None):
    g = topologies.clique(n)
    wl = ClosedLoopWorkload(g, num_objects=max(4, n // 2), k=k, rounds=3, seed=seed)
    return run_experiment(g, GreedyScheduler(uniform_beta=1), wl, config=SimConfig(probe=probe))


@pytest.mark.benchmark(group="E2-clique")
def test_e2_clique_ratio_linear_in_k_flat_in_n(benchmark):
    rows = []
    ratios_per_k = {}
    for n in (16, 32, 64):
        for k in (1, 2, 4, 8):
            res = run_one(n, k)
            r = res.competitive_ratio
            rows.append([n, k, res.metrics.num_txns, res.makespan, round(r, 2), round(r / k, 2)])
            ratios_per_k.setdefault(k, []).append(r)
            # O(k) with a generous constant, independent of n:
            assert r <= 8 * k + 4, f"ratio {r} too large for k={k}, n={n}"
    # flat in n: max/min ratio across n for fixed k stays within a small factor
    for k, rs in ratios_per_k.items():
        assert max(rs) <= 4 * min(rs) + 4
    probe = CountersProbe()
    once(benchmark, lambda: run_one(32, 4, seed=1, probe=probe))
    emit(
        "E2  Theorem 3 — clique closed-loop: ratio ~ O(k), flat in n",
        ["n", "k", "txns", "makespan", "ratio", "ratio/k"],
        rows,
        obs=probe.summary(),
        extra={"timed_run": {"n": 32, "k": 4, "seed": 1}},
    )
