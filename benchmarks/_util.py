"""Shared helpers for the experiment benchmarks.

Each bench regenerates one experiment table from DESIGN.md / EXPERIMENTS.md.
Tables are emitted to the real stdout (bypassing pytest capture, so they
appear in ``pytest benchmarks/ --benchmark-only`` output) and appended to
``benchmarks/results.txt`` for the record.
"""

from __future__ import annotations

import math
import os
import sys
from typing import Iterable, Sequence

from repro.analysis import render_table

RESULTS_PATH = os.path.join(os.path.dirname(__file__), "results.txt")


def emit(title: str, headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render, print (uncaptured), and persist one experiment table."""
    table = render_table(headers, rows, title=title)
    print("\n" + table + "\n", file=sys.__stdout__, flush=True)
    with open(RESULTS_PATH, "a") as fh:
        fh.write(table + "\n\n")
    return table


def log2(x: float) -> float:
    return math.log2(max(2, x))


def once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark timing.

    The simulations are deterministic, so one round is representative,
    and re-running a long sweep dozens of times would be wasteful.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
