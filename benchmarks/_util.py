"""Shared helpers for the experiment benchmarks.

Each bench regenerates one experiment table from DESIGN.md / EXPERIMENTS.md.
Tables are emitted to the real stdout (bypassing pytest capture, so they
appear in ``pytest benchmarks/ --benchmark-only`` output) and appended to
``benchmarks/results.txt`` for the record.

Alongside the human-readable log, :func:`emit` writes a machine-readable
``BENCH_<module>.json`` next to this file (schema ``repro.bench/1``) so the
perf trajectory is trackable across PRs: each file maps the bench module to
its tables (headers + rows) plus any observability counters passed via
``obs=`` (typically ``CountersProbe.summary()`` from :mod:`repro.obs`).
Re-running a bench replaces its table by title rather than appending, so
the JSON stays a current snapshot while ``results.txt`` keeps the history.
"""

from __future__ import annotations

import json
import math
import os
import platform
import sys
from typing import Iterable, Mapping, Optional, Sequence

from repro.analysis import render_table

RESULTS_PATH = os.path.join(os.path.dirname(__file__), "results.txt")
BENCH_SCHEMA = "repro.bench/1"


def host_meta() -> dict:
    """Worker/host metadata stamped into every ``BENCH_*.json`` snapshot.

    Parallel speedup numbers are meaningless without the core count they
    were measured on, so the schema carries it alongside the interpreter
    version and platform.
    """
    return {
        "cpu_count": os.cpu_count() or 1,
        "python": platform.python_version(),
        "platform": platform.system().lower(),
    }


def _caller_bench_name(depth: int = 2) -> str:
    """Bench-module name of the caller (``bench_clique.py`` -> ``clique``)."""
    frame = sys._getframe(depth)
    path = frame.f_globals.get("__file__", "bench_unknown")
    stem = os.path.splitext(os.path.basename(path))[0]
    return stem[len("bench_"):] if stem.startswith("bench_") else stem


def _json_path(name: str) -> str:
    return os.path.join(os.path.dirname(__file__), f"BENCH_{name}.json")


def _write_json(
    name: str,
    title: str,
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    obs: Optional[Mapping[str, object]],
    extra: Optional[Mapping[str, object]],
    jobs: Optional[Sequence[int]],
) -> str:
    path = _json_path(name)
    doc = {"schema": BENCH_SCHEMA, "bench": name, "tables": []}
    if os.path.exists(path):
        try:
            with open(path) as fh:
                loaded = json.load(fh)
            if loaded.get("schema") == BENCH_SCHEMA:
                doc = loaded
        except (OSError, ValueError):
            pass  # corrupt or foreign file: start fresh
    doc["host"] = host_meta()
    record = {"title": title, "headers": list(headers), "rows": [list(r) for r in rows]}
    if obs:
        record["obs"] = dict(obs)
    if extra:
        record["extra"] = dict(extra)
    if jobs:
        record["jobs"] = [int(j) for j in jobs]
    tables = [t for t in doc.get("tables", []) if t.get("title") != title]
    tables.append(record)
    doc["tables"] = tables
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path


def emit(
    title: str,
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    *,
    obs: Optional[Mapping[str, object]] = None,
    extra: Optional[Mapping[str, object]] = None,
    jobs: Optional[Sequence[int]] = None,
) -> str:
    """Render, print (uncaptured), and persist one experiment table.

    Appends the rendered table to ``results.txt`` and updates the calling
    module's ``BENCH_<name>.json`` snapshot.  ``obs`` attaches probe
    counters (e.g. ``CountersProbe.summary()``); ``extra`` attaches any
    other JSON-serializable metadata (parameters, derived stats); ``jobs``
    records the worker counts a parallel bench swept.  The snapshot also
    carries :func:`host_meta` so speedups are interpretable later.
    """
    rows = [list(r) for r in rows]
    table = render_table(headers, rows, title=title)
    print("\n" + table + "\n", file=sys.__stdout__, flush=True)
    with open(RESULTS_PATH, "a") as fh:
        fh.write(table + "\n\n")
    _write_json(_caller_bench_name(), title, headers, rows, obs, extra, jobs)
    return table


def log2(x: float) -> float:
    return math.log2(max(2, x))


def once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark timing.

    The simulations are deterministic, so one round is representative,
    and re-running a long sweep dozens of times would be wasteful.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
