"""E16 — b_A ablation: improving the offline scheduler improves the
online schedule through the bucket conversion (Theorem 4's multiplicative
``b_A`` factor, observed end to end).

We compare arrival-order coloring, topology-aware ordering, and the
local-search improver, first as *batch* schedulers (direct b_A proxy) and
then inside the bucket scheduler on an online workload.
"""

import pytest

from _util import emit, once
from repro.analysis import batch_lower_bound, run_experiment
from repro.core import BucketScheduler
from repro.network import topologies
from repro.offline import (
    ColoringBatchScheduler,
    ImprovedBatchScheduler,
    LineBatchScheduler,
    StandaloneView,
)
from repro.sim.transactions import Transaction
from repro.workloads import BatchWorkload, OnlineWorkload


def materialize(wl):
    return [
        Transaction(i, s.home, frozenset(s.objects), s.gen_time, reads=frozenset(s.reads))
        for i, s in enumerate(wl.arrivals())
    ]


BATCHES = [
    ("naive", lambda: ColoringBatchScheduler("arrival")),
    ("aware", lambda: LineBatchScheduler()),
    ("improved", lambda: ImprovedBatchScheduler(ColoringBatchScheduler("arrival"), iterations=120, seed=0, restarts=2)),
]


@pytest.mark.benchmark(group="E16-improver")
def test_e16_batch_quality(benchmark):
    g = topologies.line(24)
    rows = []
    scores = {}
    for seed in (0, 1, 2):
        wl = BatchWorkload.uniform(g, num_objects=6, k=2, seed=seed)
        txns = materialize(wl)
        view = StandaloneView(g, wl.initial_objects())
        lb = batch_lower_bound(g, wl.initial_objects(), txns)
        for name, mk in BATCHES:
            plan = mk().plan(view, txns)
            ratio = max(plan.values()) / lb
            scores.setdefault(name, []).append(ratio)
            rows.append([seed, name, max(plan.values()), lb, round(ratio, 2)])
    # improved never worse than naive on any instance
    for a, b in zip(scores["improved"], scores["naive"]):
        assert a <= b + 1e-9
    once(benchmark, lambda: BATCHES[2][1]().plan(
        StandaloneView(g, BatchWorkload.uniform(g, 6, 2, seed=3).initial_objects()),
        materialize(BatchWorkload.uniform(g, 6, 2, seed=3)),
    ))
    emit(
        "E16a batch b_A proxy — makespan/LB by offline scheduler (line-24)",
        ["seed", "offline-A", "makespan", "LB", "ratio"],
        rows,
    )


@pytest.mark.benchmark(group="E16-improver")
def test_e16_through_bucket_conversion(benchmark):
    g = topologies.line(24)
    rows = []
    for name, mk in BATCHES:
        wl = OnlineWorkload.bernoulli(g, num_objects=6, k=2, rate=0.05, horizon=60, seed=4)
        res = run_experiment(g, BucketScheduler(mk()), wl)
        rows.append(
            [name, res.metrics.num_txns, res.makespan,
             round(res.metrics.mean_latency, 1), round(res.competitive_ratio, 2)]
        )
    once(benchmark, lambda: run_experiment(
        g,
        BucketScheduler(ImprovedBatchScheduler(ColoringBatchScheduler(), iterations=30, seed=1)),
        OnlineWorkload.bernoulli(g, num_objects=6, k=2, rate=0.05, horizon=60, seed=5),
    ))
    emit(
        "E16b online effect — bucket(A) for each offline A (line-24)",
        ["offline-A", "txns", "makespan", "mean-lat", "ratio"],
        rows,
    )
