"""E6 — Theorem 4 on the cluster graph: bucket conversion of the
clique-banded batch scheduler is O(min(k*beta, ...) * log^3(n*gamma))
competitive.

Shape check: the normalized ratio (by min(k*beta, n) * log^3(n*gamma))
stays far below 1 and does not blow up with alpha, beta, gamma, or k.
"""

import pytest

from _util import emit, log2, once
from repro.analysis import run_experiment
from repro.core import BucketScheduler
from repro.network import topologies
from repro.offline import ClusterBatchScheduler
from repro.workloads import OnlineWorkload


def run_cluster(alpha, beta, gamma, k, seed=0):
    g = topologies.cluster_graph(alpha, beta, gamma)
    n = g.num_nodes
    wl = OnlineWorkload.bernoulli(
        g, num_objects=max(4, n // 3), k=k, rate=1.0 / n, horizon=4 * gamma, seed=seed
    )
    res = run_experiment(g, BucketScheduler(ClusterBatchScheduler()), wl)
    return g, res


@pytest.mark.benchmark(group="E6-cluster")
def test_e6_cluster_bound_shape(benchmark):
    rows = []
    for alpha, beta, gamma in [(3, 4, 6), (4, 4, 8), (4, 8, 12), (6, 4, 16)]:
        for k in (1, 2, 4):
            g, res = run_cluster(alpha, beta, gamma, k)
            n = g.num_nodes
            r = res.competitive_ratio
            bound = min(k * beta, n) * log2(n * gamma) ** 3
            rows.append(
                [f"{alpha}x{beta},g={gamma}", n, k, res.metrics.num_txns,
                 res.makespan, round(r, 2), round(r / bound, 4)]
            )
            assert r <= bound, f"cluster {alpha}x{beta} gamma={gamma} k={k}: {r} > {bound}"
    once(benchmark, lambda: run_cluster(4, 4, 8, 2, seed=1))
    emit(
        "E6  Theorem 4 + cluster — ratio within O(min(k*beta,.)*log^3(n*gamma))",
        ["cluster", "n", "k", "txns", "makespan", "ratio", "ratio/bound"],
        rows,
    )
