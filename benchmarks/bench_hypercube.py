"""E3 — Section III-D: O(k log n) competitiveness on hypercube, butterfly,
and log n-dimensional grids.

The reproduced shape: ratio / (k * log2 n) stays bounded by a small
constant across sizes and k, for all three diameter-log(n) families.
"""

import pytest

from _util import emit, log2, once
from repro.analysis import run_experiment
from repro.core import GreedyScheduler
from repro.network import topologies
from repro.workloads import ClosedLoopWorkload


FAMILIES = [
    ("hypercube", lambda d: topologies.hypercube(d), (3, 4, 5)),
    ("butterfly", lambda d: topologies.butterfly(d), (2, 3)),
    ("grid-2^d", lambda d: topologies.grid([2] * d), (3, 4, 5)),
]


def run_one(make_graph, d, k, seed=0):
    g = make_graph(d)
    wl = ClosedLoopWorkload(g, num_objects=max(4, g.num_nodes // 2), k=k, rounds=2, seed=seed)
    return g, run_experiment(g, GreedyScheduler(), wl)


@pytest.mark.benchmark(group="E3-hypercube")
def test_e3_ratio_within_k_logn(benchmark):
    rows = []
    for family, make_graph, dims in FAMILIES:
        for d in dims:
            for k in (1, 2, 4):
                g, res = run_one(make_graph, d, k)
                r = res.competitive_ratio
                norm = r / (k * log2(g.num_nodes))
                rows.append(
                    [family, d, g.num_nodes, k, res.makespan, round(r, 2), round(norm, 2)]
                )
                assert norm <= 8, f"{family} d={d} k={k}: ratio {r} beyond O(k log n)"
    once(benchmark, lambda: run_one(FAMILIES[0][1], 4, 2, seed=1))
    emit(
        "E3  hypercube/butterfly/grid — ratio ~ O(k log n)",
        ["family", "d", "n", "k", "makespan", "ratio", "ratio/(k*log n)"],
        rows,
    )
