"""E9 — Scheduler horse race across topologies.

Who wins where: the greedy coloring dominates on low-diameter graphs; the
bucket conversion keeps large-diameter graphs in check; both beat the FIFO
serial anchor wherever there is exploitable parallelism; the TSP-tour
baseline is competitive only when objects have one natural tour (k=1,
hotspot-like instances).
"""

import pytest

from _util import emit, once
from repro.analysis import run_experiment
from repro.baselines import FifoSerialScheduler, TspTourScheduler
from repro.core import AdaptiveScheduler, BucketScheduler, GreedyScheduler
from repro.network import topologies
from repro.offline import (
    ClusterBatchScheduler,
    ColoringBatchScheduler,
    LineBatchScheduler,
    StarBatchScheduler,
)
from repro.workloads import OnlineWorkload


TOPOS = [
    ("clique-16", lambda: topologies.clique(16), ColoringBatchScheduler),
    ("hypercube-4", lambda: topologies.hypercube(4), ColoringBatchScheduler),
    ("grid-5x5", lambda: topologies.grid([5, 5]), ColoringBatchScheduler),
    ("line-32", lambda: topologies.line(32), LineBatchScheduler),
    ("cluster-4x4", lambda: topologies.cluster_graph(4, 4, gamma=8), ClusterBatchScheduler),
    ("star-4x4", lambda: topologies.star_graph(4, 4), StarBatchScheduler),
]


def run_all(make_graph, batch_cls, seed=0):
    g = make_graph()
    mk = lambda: OnlineWorkload.bernoulli(
        g, num_objects=8, k=2, rate=1.2 / g.num_nodes, horizon=3 * g.diameter() + 20, seed=seed
    )
    out = {}
    out["greedy"] = run_experiment(g, GreedyScheduler(), mk())
    out["bucket"] = run_experiment(g, BucketScheduler(batch_cls()), mk())
    out["adaptive"] = run_experiment(g, AdaptiveScheduler(), mk())
    out["fifo"] = run_experiment(g, FifoSerialScheduler(), mk())
    out["tsp"] = run_experiment(g, TspTourScheduler(), mk())
    return g, out


@pytest.mark.benchmark(group="E9-baselines")
def test_e9_horse_race(benchmark):
    rows = []
    fifo_wins = 0
    for name, make_graph, batch_cls in TOPOS:
        g, res = run_all(make_graph, batch_cls)
        best = min(res, key=lambda s: res[s].makespan)
        rows.append(
            [name, res["greedy"].makespan, res["bucket"].makespan,
             res["adaptive"].makespan, res["tsp"].makespan, res["fifo"].makespan, best]
        )
        if res["fifo"].makespan <= min(r.makespan for s, r in res.items() if s != "fifo"):
            fifo_wins += 1
    # FIFO must not be the overall winner anywhere interesting.
    assert fifo_wins <= 1
    once(benchmark, lambda: run_all(TOPOS[0][1], TOPOS[0][2], seed=1))
    emit(
        "E9  horse race — makespan by scheduler (lower is better)",
        ["topology", "greedy", "bucket", "adaptive", "tsp", "fifo", "winner"],
        rows,
    )


@pytest.mark.benchmark(group="E9-baselines")
def test_e9_latency_view(benchmark):
    rows = []
    for name, make_graph, batch_cls in TOPOS[:4]:
        g, res = run_all(make_graph, batch_cls, seed=3)
        rows.append(
            [name]
            + [round(res[s].metrics.mean_latency, 1) for s in ("greedy", "bucket", "tsp", "fifo")]
            + [max(res[s].metrics.max_latency for s in res)]
        )
    once(benchmark, lambda: run_all(TOPOS[1][1], TOPOS[1][2], seed=3))
    emit(
        "E9b horse race — mean latency by scheduler",
        ["topology", "greedy", "bucket", "tsp", "fifo", "worst-max"],
        rows,
    )
