"""E5 — Theorem 4 on the line: the bucket conversion of the O(1)-approx
line batch scheduler is O(log^3 n)-competitive; competitiveness does not
depend on k (the paper's headline for the line topology).

Shape check: ratio / log^3(n) decreasing-or-flat in n; ratio roughly flat
across k.
"""

import pytest

from _util import emit, log2, once
from repro.analysis import run_experiment
from repro.core import BucketScheduler, GreedyScheduler
from repro.network import topologies
from repro.offline import LineBatchScheduler
from repro.workloads import OnlineWorkload


def run_line(n, k, seed=0):
    g = topologies.line(n)
    wl = OnlineWorkload.bernoulli(
        g, num_objects=max(4, n // 4), k=k, rate=1.5 / n, horizon=3 * n, seed=seed
    )
    res = run_experiment(g, BucketScheduler(LineBatchScheduler()), wl)
    return g, res


@pytest.mark.benchmark(group="E5-line")
def test_e5_line_log3_competitive(benchmark):
    rows = []
    for n in (16, 32, 64, 128):
        for k in (1, 2, 4):
            g, res = run_line(n, k)
            r = res.competitive_ratio
            norm = r / (log2(n) ** 3)
            rows.append([n, k, res.metrics.num_txns, res.makespan, round(r, 2), round(norm, 3)])
            assert norm <= 1.0, f"line n={n} k={k}: ratio {r} beyond O(log^3 n)"
    once(benchmark, lambda: run_line(64, 2, seed=1))
    emit(
        "E5  Theorem 4 + line — bucket(line-sweep) ratio ~ O(log^3 n), k-independent",
        ["n", "k", "txns", "makespan", "ratio", "ratio/log^3(n)"],
        rows,
    )


@pytest.mark.benchmark(group="E5-line")
def test_e5_line_bucket_vs_greedy(benchmark):
    """Contrast: greedy has no guarantee on large-diameter graphs; the
    bucket schedule keeps the worst-case ratio in check as n grows."""
    rows = []
    for n in (32, 64, 128):
        g = topologies.line(n)
        mk = lambda: OnlineWorkload.bernoulli(
            g, num_objects=max(4, n // 4), k=2, rate=1.5 / n, horizon=3 * n, seed=7
        )
        bucket = run_experiment(g, BucketScheduler(LineBatchScheduler()), mk())
        greedy = run_experiment(g, GreedyScheduler(), mk())
        rows.append(
            [n, round(bucket.competitive_ratio, 2), round(greedy.competitive_ratio, 2),
             bucket.makespan, greedy.makespan]
        )
    once(benchmark, lambda: run_line(64, 2, seed=8))
    emit(
        "E5b line — bucket vs greedy worst-case ratio",
        ["n", "bucket-ratio", "greedy-ratio", "bucket-makespan", "greedy-makespan"],
        rows,
    )
