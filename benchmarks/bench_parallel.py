"""E-PARALLEL — fan-out speedup and serial-floor guard for repro.parallel.

Times the three wired fan-out layers — multi-seed ``replicate``, a chaos
``run_sweep`` (monitors on), and a compare-style scheduler×seed grid via
``run_grid`` — at ``jobs`` ∈ {1, 2, 4}, asserting the parallel results
are identical to serial before trusting any timing.

Two guards come out of the numbers:

* **Serial floor** (hard): calibrated serial replicate throughput
  (seeds/sec divided by a same-session heap-op calibration, so machine
  speed cancels) must stay within 30% of the committed
  ``BENCH_parallel.json`` snapshot — the ``jobs=1`` path must never pay
  for the pool's existence.
* **Speedup** (informational): with ≥ 4 physical cores, ``jobs=4``
  should reach ~2× on these workloads; below that core count a speedup
  target is physically meaningless, so the check only *warns* and the
  snapshot records the measured curve plus the host core count
  (``host.cpu_count``) needed to interpret it.
"""

import heapq
import json
import os
import time

import pytest

from _util import emit, once
from repro.analysis import replicate, run_experiment, run_grid
from repro.chaos import run_sweep
from repro.core import GreedyScheduler
from repro.network import topologies
from repro.workloads import OnlineWorkload
from repro.sim import SimConfig

JOBS_SWEEP = [1, 2, 4]
REGRESSION_FLOOR = 0.7
#: jobs=4 speedup below this on a >=4-core host prints a warning
SPEEDUP_TARGET = 2.0
BASELINE_PATH = os.path.join(os.path.dirname(__file__), "BENCH_parallel.json")
TITLE = "E-PARALLEL  fan-out speedup — replicate / chaos sweep / compare grid"

REPLICATE_SEEDS = list(range(8))
SWEEP_EPISODES = 12
GRID_SCHEDULERS = ["greedy", "bucket", "fifo", "tsp"]
GRID_SEEDS = [0, 1]


def _replicate_case(seed):
    """One replicate unit: a dense bernoulli clique run (picklable)."""
    g = topologies.clique(16)
    wl = OnlineWorkload.bernoulli(
        g, num_objects=8, k=2, rate=0.2, horizon=120, seed=seed
    )
    res = run_experiment(g, GreedyScheduler(), wl)
    return {"makespan": res.makespan, "ratio": res.competitive_ratio}


def _grid_case(case):
    """One compare-grid cell: (scheduler name, seed) -> metrics."""
    from repro.cli import make_scheduler, parse_topology

    name, seed = case
    g = parse_topology("clique:12")
    scheduler, speed = make_scheduler(name, g)
    wl = OnlineWorkload.bernoulli(
        g, num_objects=6, k=2, rate=0.15, horizon=80, seed=seed
    )
    res = run_experiment(g, scheduler, wl, config=SimConfig(object_speed_den=speed))
    return {"makespan": res.makespan, "txns": res.metrics.num_txns}


def _canon(value):
    return json.dumps(value, sort_keys=True, default=repr)


def _run_replicate(jobs):
    return replicate(_replicate_case, REPLICATE_SEEDS, jobs=jobs)


def _run_sweep(jobs):
    res = run_sweep(
        SWEEP_EPISODES, seed=6, topology="ring:10", horizon=25, jobs=jobs
    )
    return [r.to_dict() for r in res.episodes]


def _run_grid(jobs):
    cases = [(name, seed) for name in GRID_SCHEDULERS for seed in GRID_SEEDS]
    return run_grid(_grid_case, cases, jobs=jobs)


def _calibrate(n=150_000, repeats=3):
    """ops/sec of a fixed heap push/pop workload (machine speed proxy)."""
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        h = []
        for i in range(n):
            heapq.heappush(h, (i * 2654435761) % 1000003)
        while h:
            heapq.heappop(h)
        best = min(best, time.perf_counter() - t0)
    return 2 * n / best


def _committed_serial_calibrated():
    try:
        with open(BASELINE_PATH) as fh:
            doc = json.load(fh)
    except (OSError, ValueError):
        return None
    for table in doc.get("tables", []):
        if table.get("title") == TITLE:
            return (table.get("extra") or {}).get("serial_calibrated")
    return None


@pytest.mark.benchmark(group="E-PARALLEL-speedup")
def test_parallel_speedup_and_serial_floor(benchmark):
    baseline = _committed_serial_calibrated()
    cal = _calibrate()
    layers = [
        ("replicate", _run_replicate, len(REPLICATE_SEEDS)),
        ("chaos-sweep", _run_sweep, SWEEP_EPISODES),
        ("compare-grid", _run_grid, len(GRID_SCHEDULERS) * len(GRID_SEEDS)),
    ]
    rows = []
    serial_calibrated = {}
    speedups = {}
    for name, fn, units in layers:
        reference = None
        serial_secs = None
        for jobs in JOBS_SWEEP:
            t0 = time.perf_counter()
            out = fn(jobs)
            secs = time.perf_counter() - t0
            if reference is None:
                reference = _canon(out)
                serial_secs = secs
                serial_calibrated[name] = round(units / secs / cal * 1e6, 4)
            else:
                # Timing without determinism is worthless: parallel output
                # must match serial byte-for-byte before it is counted.
                assert _canon(out) == reference, (
                    f"{name}: jobs={jobs} output differs from serial"
                )
            speedup = round(serial_secs / secs, 2)
            speedups.setdefault(name, {})[str(jobs)] = speedup
            rows.append([
                name, jobs, units, round(secs * 1e3, 1),
                round(units / secs, 2), speedup,
            ])
    once(benchmark, lambda: _run_replicate(1))
    cores = os.cpu_count() or 1
    emit(
        TITLE,
        ["layer", "jobs", "units", "best_ms", "units/s", "speedup"],
        rows,
        extra={
            "serial_calibrated": serial_calibrated,
            "speedups": speedups,
            "calibration_ops": round(cal, 1),
            "jobs_sweep": JOBS_SWEEP,
            "regression_floor": REGRESSION_FLOOR,
            "speedup_target": SPEEDUP_TARGET,
        },
        jobs=JOBS_SWEEP,
    )
    if cores >= 4:
        for name, curve in speedups.items():
            if curve.get("4", 0) < SPEEDUP_TARGET:
                print(
                    f"WARNING: {name} jobs=4 speedup {curve.get('4')}x < "
                    f"{SPEEDUP_TARGET}x on a {cores}-core host"
                )
    if baseline:
        for name, rate in serial_calibrated.items():
            base = baseline.get(name)
            assert base is None or rate >= REGRESSION_FLOOR * base, (
                f"{name}: calibrated serial throughput {rate:.4f} < "
                f"{REGRESSION_FLOOR:.0%} of committed baseline {base:.4f}"
            )
