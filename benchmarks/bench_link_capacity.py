"""E20 — Bounded link capacity (the precise Section VI open question).

Hop-level motion lets us cap concurrent traversals per edge.  Topologies
with structural bottlenecks (the star center, cluster bridges) should
suffer most; the mesh should spread load.  The table reports deferral
counts and makespan inflation as capacity tightens, per topology.
"""

import pytest

from _util import emit, once
from repro.core import GreedyScheduler
from repro.network import topologies
from repro.sim.engine import Simulator
from repro.workloads import OnlineWorkload


CONFIGS = [
    ("grid-5x5", lambda: topologies.grid([5, 5])),
    ("star-4x4", lambda: topologies.star_graph(4, 4)),
    ("cluster-3x4", lambda: topologies.cluster_graph(3, 4, gamma=6)),
    ("line-16", lambda: topologies.line(16)),
]


def run_capped(graph, capacity, seed=0):
    wl = OnlineWorkload.bernoulli(
        graph, num_objects=8, k=2, rate=1.5 / graph.num_nodes, horizon=50, seed=seed
    )
    sim = Simulator(
        graph,
        GreedyScheduler(),
        wl,
        hop_motion=True,
        link_capacity=capacity,
        strict=False,
    )
    return sim.run()


@pytest.mark.benchmark(group="E20-link-capacity")
def test_e20_link_capacity_sweep(benchmark):
    rows = []
    for name, make_graph in CONFIGS:
        g = make_graph()
        base = None
        for cap in (None, 2, 1):
            if cap is None:
                wl = OnlineWorkload.bernoulli(
                    g, num_objects=8, k=2, rate=1.5 / g.num_nodes, horizon=50, seed=0
                )
                trace = Simulator(g, GreedyScheduler(), wl, hop_motion=True).run()
            else:
                trace = run_capped(g, cap)
            if base is None:
                base = trace.makespan()
            rows.append(
                [
                    name,
                    "inf" if cap is None else cap,
                    trace.num_txns,
                    len(trace.violations),
                    trace.makespan(),
                    round(trace.makespan() / max(1, base), 2),
                ]
            )
            # congestion defers, never drops
            assert len(trace.txns) > 0
    once(benchmark, lambda: run_capped(CONFIGS[0][1](), 1, seed=1))
    emit(
        "E20 link capacity — per-edge concurrency caps (hop motion)",
        ["topology", "cap", "txns", "deferrals", "makespan", "inflation"],
        rows,
    )


@pytest.mark.benchmark(group="E20-link-capacity")
def test_e20b_bottleneck_prediction(benchmark):
    """Edge betweenness predicts where the load lands on *structurally
    bottlenecked* topologies (star center, cluster bridges, line middle).
    The symmetric mesh is the negative control: with no structural
    bottleneck, workload randomness dominates and the correlation is ~0 —
    structure-based capacity planning only works where structure exists."""
    from repro.analysis import predicted_vs_measured

    rows = []
    for name, make_graph in CONFIGS:
        g = make_graph()
        wl = OnlineWorkload.bernoulli(
            g, num_objects=8, k=2, rate=1.5 / g.num_nodes, horizon=50, seed=3
        )
        trace = Simulator(g, GreedyScheduler(), wl, hop_motion=True).run()
        rho, table = predicted_vs_measured(g, trace)
        hot = table[0]
        rows.append([name, round(rho, 2), f"{hot[0][0]}-{hot[0][1]}", hot[2]])
        if name != "grid-5x5":  # the mesh is the negative control
            assert rho > 0.2, f"{name}: betweenness failed to predict load (rho={rho})"
    once(benchmark, lambda: run_capped(CONFIGS[1][1](), 2, seed=4))
    emit(
        "E20b structural prediction — betweenness vs measured edge load",
        ["topology", "spearman rho", "hottest edge", "traversals"],
        rows,
    )
