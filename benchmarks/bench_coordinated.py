"""E15 — Section III-E: the simple centralized online scheduler.

A designated coordinator collects information and decides; every bound
scales by the information round-trip, O(diameter) = O(log n) on the
Section III graphs.  The table compares clairvoyant greedy, the
coordinated variant, and the fully distributed bucket scheduler — the
three points on the centralization spectrum.
"""

import pytest

from _util import emit, once
from repro.analysis import run_experiment
from repro.core import (
    CoordinatedGreedyScheduler,
    DistributedBucketScheduler,
    GreedyScheduler,
)
from repro.network import topologies
from repro.offline import ColoringBatchScheduler
from repro.workloads import OnlineWorkload
from repro.sim import SimConfig


CONFIGS = [
    ("clique-16", lambda: topologies.clique(16)),
    ("hypercube-4", lambda: topologies.hypercube(4)),
    ("grid-4x4", lambda: topologies.grid([4, 4])),
    ("butterfly-2", lambda: topologies.butterfly(2)),
]


def run_all(make_graph, seed=0):
    g = make_graph()
    mk = lambda: OnlineWorkload.bernoulli(
        g, num_objects=6, k=2, rate=1.0 / g.num_nodes, horizon=40, seed=seed
    )
    clairvoyant = run_experiment(g, GreedyScheduler(), mk())
    coordinated = run_experiment(g, CoordinatedGreedyScheduler(), mk())
    distributed = run_experiment(
        g, DistributedBucketScheduler(ColoringBatchScheduler(), seed=1), mk(),
        config=SimConfig(object_speed_den=2),
    )
    return g, clairvoyant, coordinated, distributed


@pytest.mark.benchmark(group="E15-coordinated")
def test_e15_centralization_spectrum(benchmark):
    rows = []
    for name, make_graph in CONFIGS:
        g, clair, coord, dist = run_all(make_graph)
        ecc = min(g.eccentricity(u) for u in g.nodes())
        overhead = coord.metrics.mean_latency - clair.metrics.mean_latency
        rows.append(
            [
                name,
                round(clair.metrics.mean_latency, 1),
                round(coord.metrics.mean_latency, 1),
                round(dist.metrics.mean_latency, 1),
                round(overhead, 1),
                2 * ecc,
                coord.metrics.messages_sent,
                dist.metrics.messages_sent,
            ]
        )
        # Section III-E: the coordination overhead per transaction is the
        # information round-trip, O(diameter).
        assert overhead <= 2 * g.diameter() + 4
    once(benchmark, lambda: run_all(CONFIGS[1][1], seed=1))
    emit(
        "E15 Section III-E — clairvoyant vs coordinated vs distributed (mean latency)",
        ["topology", "clairvoyant", "coordinated", "distributed",
         "coord-overhead", "2*ecc", "coord-msgs", "dist-msgs"],
        rows,
    )
