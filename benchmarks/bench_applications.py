"""E21 — Application benchmarks (the paper's Section VI future work).

"It would also be interesting to evaluate our algorithm against different
application benchmarks in a practical setting" — this bench does exactly
that with three STAMP-style synthetic applications (bank transfers,
travel bookings, warehouse inventory) across the main schedulers, on a
datacenter-flavoured cluster topology.
"""

import pytest

from _util import emit, once
from repro.analysis import latency_fairness, run_experiment
from repro.baselines import FifoSerialScheduler, TspTourScheduler
from repro.core import BucketScheduler, GreedyScheduler
from repro.network import topologies
from repro.offline import ClusterBatchScheduler
from repro.workloads import bank_workload, inventory_workload, vacation_workload


def make_graph():
    return topologies.cluster_graph(4, 6, gamma=8)


APPS = [
    ("bank", lambda g, seed: bank_workload(g, num_accounts=24, num_transfers=90, seed=seed)),
    ("vacation", lambda g, seed: vacation_workload(g, num_bookings=80, seed=seed)),
    ("inventory", lambda g, seed: inventory_workload(g, num_shards=8, num_orders=90, seed=seed)),
]

SCHEDULERS = [
    ("greedy", lambda: GreedyScheduler()),
    ("bucket", lambda: BucketScheduler(ClusterBatchScheduler())),
    ("tsp", lambda: TspTourScheduler()),
    ("fifo", lambda: FifoSerialScheduler()),
]


@pytest.mark.benchmark(group="E21-applications")
def test_e21_application_mixes(benchmark):
    rows = []
    g = make_graph()
    for app_name, make_wl in APPS:
        results = {}
        for sched_name, make_sched in SCHEDULERS:
            res = run_experiment(g, make_sched(), make_wl(g, seed=11))
            results[sched_name] = res
            rows.append(
                [
                    app_name,
                    sched_name,
                    res.metrics.num_txns,
                    res.makespan,
                    round(res.metrics.mean_latency, 1),
                    round(res.metrics.p99_latency, 1),
                    round(latency_fairness(res.trace), 2),
                ]
            )
        # schedulers must beat the serial anchor on every application
        for sched_name in ("greedy", "bucket", "tsp"):
            assert results[sched_name].makespan <= results["fifo"].makespan
    once(benchmark, lambda: run_experiment(g, GreedyScheduler(), APPS[0][1](g, 12)))
    emit(
        "E21 application benchmarks — STAMP-style mixes on cluster(4x6,g=8)",
        ["application", "scheduler", "txns", "makespan", "mean-lat", "p99-lat", "fairness"],
        rows,
    )
