"""E17 — The grid crossing (interlock) instance family.

Busch et al. [4] separate execution-time from communication-cost
scheduling via a recursive grid construction; this bench runs the base
interlock pattern across schedulers.  Honest finding (recorded in
EXPERIMENTS.md): one interlock level does *not* separate — nearest-
neighbour tour ordering degenerates to a row sweep and performs well;
the value of the family is a structured stress test with a clean lower
bound, plus the observation that the separation genuinely needs the
paper's deep recursion, not just crossing contention.
"""

import pytest

from _util import emit, once
from repro.analysis import run_experiment
from repro.baselines import FifoSerialScheduler, TspTourScheduler
from repro.core import BucketScheduler, GreedyScheduler
from repro.offline import ColoringBatchScheduler
from repro.workloads import crossing_lower_bound, grid_crossing_workload


SCHEDULERS = [
    ("greedy", lambda: GreedyScheduler()),
    ("greedy-degree", lambda: GreedyScheduler(order="degree")),
    ("bucket", lambda: BucketScheduler(ColoringBatchScheduler("home"))),
    ("tsp", lambda: TspTourScheduler()),
    ("fifo", lambda: FifoSerialScheduler()),
]


@pytest.mark.benchmark(group="E17-crossing")
def test_e17_crossing_instance(benchmark):
    rows = []
    for side in (4, 6, 8):
        lb = crossing_lower_bound(side)
        for name, mk in SCHEDULERS:
            g, wl = grid_crossing_workload(side, shuffle_seed=3)
            res = run_experiment(g, mk(), wl)
            ratio = res.makespan / lb
            rows.append([side, name, res.makespan, lb, round(ratio, 2)])
            if name != "fifo":
                assert ratio <= 3 * side, f"{name} side={side}: ratio {ratio}"
    def timed():
        g, wl = grid_crossing_workload(6, shuffle_seed=4)
        return run_experiment(g, GreedyScheduler(), wl)

    once(benchmark, timed)
    emit(
        "E17 crossing instance — makespan/LB by scheduler",
        ["side", "scheduler", "makespan", "LB", "ratio"],
        rows,
    )
