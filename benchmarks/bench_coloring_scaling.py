"""E10 — Algorithm 1 sequential cost scales as O(n' + m' log n').

Times the pure scheduling computation (coloring one batch of n
transactions against a Zipf-hot conflict graph) as n grows.  The paper's
complexity is in the *size of the dependency graph* — with hot objects the
edge count m' grows ~quadratically in n, so wall time per doubling may
grow ~4x while time *per dependency edge* stays near-flat (up to the
log n' factor).  The table reports both views.
"""

import time

import pytest

from _util import emit, once
from repro.analysis import run_experiment
from repro.core import GreedyScheduler
from repro.network import topologies
from repro.workloads import BatchWorkload, ZipfChooser


def conflict_edges(workload):
    """Count dependency-graph edges of the batch (conflicting txn pairs)."""
    specs = workload.arrivals()
    m = 0
    for i, a in enumerate(specs):
        for b in specs[i + 1 :]:
            if set(a.objects) & set(b.objects):
                m += 1
    return m


def run_batch(n, seed=0):
    g = topologies.clique(n)
    wl = BatchWorkload.uniform(
        g, num_objects=max(4, n // 2), k=3, seed=seed, chooser=ZipfChooser(max(4, n // 2), 1.2)
    )
    m = conflict_edges(wl)
    t0 = time.perf_counter()
    res = run_experiment(g, GreedyScheduler(uniform_beta=1), wl, compute_ratios=False)
    return time.perf_counter() - t0, m, res


@pytest.mark.benchmark(group="E10-coloring-scaling")
def test_e10_scheduling_cost_scaling(benchmark):
    rows = []
    per_edge = {}
    for n in (32, 64, 128, 256):
        # best of 3 to tame timer noise
        elapsed, m, res = min((run_batch(n, seed=s) for s in range(3)), key=lambda x: x[0])
        per_edge[n] = elapsed / max(1, m)
        rows.append(
            [n, m, res.makespan, round(elapsed * 1e3, 2), round(per_edge[n] * 1e6, 2)]
        )
    # O(n' + m' log n'): time per edge may grow by ~log factors, never by
    # another factor of n.  Compare the ends of the sweep (8x in n).
    assert per_edge[256] <= 16 * per_edge[32], (
        f"per-edge cost grew {per_edge[256] / per_edge[32]:.1f}x over an 8x n sweep"
    )
    once(benchmark, lambda: run_batch(128, seed=9))
    emit(
        "E10 Algorithm 1 sequential cost — O(n' + m' log n') in dependency size",
        ["n", "conflict-edges m'", "makespan", "total ms", "us per edge"],
        rows,
    )
