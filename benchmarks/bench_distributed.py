"""E8 — Theorem 5: the distributed bucket scheduler pays only a poly-log
overhead over the centralized bucket scheduler.

Both run with half-speed objects (the distributed algorithm's operating
regime) on identical workloads; the table reports the makespan and
max-latency overhead factors plus the message bill that buys
decentralization.
"""

import pytest

from _util import emit, log2, once
from repro.analysis import run_experiment
from repro.core import BucketScheduler, DistributedBucketScheduler
from repro.network import topologies
from repro.offline import ColoringBatchScheduler, LineBatchScheduler
from repro.workloads import OnlineWorkload
from repro.sim import SimConfig


CONFIGS = [
    ("line-24", lambda: topologies.line(24), LineBatchScheduler),
    ("grid-5x5", lambda: topologies.grid([5, 5]), ColoringBatchScheduler),
    ("cluster-3x4", lambda: topologies.cluster_graph(3, 4, gamma=6), ColoringBatchScheduler),
    ("clique-16", lambda: topologies.clique(16), ColoringBatchScheduler),
]


def run_pair(make_graph, batch_cls, seed=0):
    g = make_graph()
    mk = lambda: OnlineWorkload.bernoulli(
        g, num_objects=6, k=2, rate=0.8 / g.num_nodes, horizon=4 * g.diameter() + 20, seed=seed
    )
    central = run_experiment(g, BucketScheduler(batch_cls()), mk(), config=SimConfig(object_speed_den=2))
    distributed = run_experiment(
        g, DistributedBucketScheduler(batch_cls(), seed=1), mk(),
        config=SimConfig(object_speed_den=2),
    )
    return g, central, distributed


@pytest.mark.benchmark(group="E8-distributed")
def test_e8_distributed_overhead_polylog(benchmark):
    rows = []
    for name, make_graph, batch_cls in CONFIGS:
        g, central, dist = run_pair(make_graph, batch_cls)
        over_mk = dist.makespan / max(1, central.makespan)
        over_lat = dist.max_latency / max(1, central.max_latency)
        nd = g.num_nodes * max(1, g.diameter())
        rows.append(
            [name, central.metrics.num_txns, central.makespan, dist.makespan,
             round(over_mk, 2), round(over_lat, 2), dist.metrics.messages_sent]
        )
        # Theorem 5 envelope (vs Theorem 4): an extra O(log^6(nD)) at most;
        # in practice the overhead is a small constant-to-log factor.
        assert over_mk <= log2(nd) ** 3, f"{name}: overhead {over_mk} beyond poly-log"
        assert dist.metrics.messages_sent > 0
    once(benchmark, lambda: run_pair(CONFIGS[0][1], CONFIGS[0][2], seed=2))
    emit(
        "E8  Theorem 5 — distributed vs centralized bucket (both half-speed)",
        ["topology", "txns", "central-mk", "dist-mk", "mk-overhead", "lat-overhead", "messages"],
        rows,
    )
