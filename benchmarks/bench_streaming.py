"""E-STREAM — open-system engine throughput and frontier probe budget.

Guard-rail for the streaming path, the open-system sibling of
``bench_engine.py``: the lazy arrival pump + SLO fold must not pay for
their structure with throughput.  Times probe-less ``run(until=...)``
runs of a Poisson open workload at fixed λ (steps counted in a separate,
untimed probed run — the streams are deterministic, so counts match) and
compares *calibrated* steps/sec (divided by a fixed pure-Python heap
workload's ops/sec, so CPU-speed differences cancel) against the
committed ``BENCH_streaming.json`` snapshot, failing on a >30%
regression.

Also runs one small stability-frontier bisection and records its λ* and
probe count per scheduler: the probe count is a pure function of the
search parameters, so a drift against the snapshot means the bisection
(or the stability verdict under it) changed behaviour, not the machine.
"""

import heapq
import json
import os
import time

import pytest

from _util import emit, once
from repro.analysis import slo_summary, stability_frontier
from repro.core import GreedyScheduler
from repro.network import topologies
from repro.obs import CountersProbe
from repro.sim import Simulator
from repro.workloads import PoissonOpenWorkload, WorkloadSpec

#: (clique size, λ, horizon): dense enough that most steps are active.
SWEEP = [(16, 0.8, 600), (32, 1.2, 400)]
WARMUP_FRACTION = 4  # warmup = horizon // 4, as the CLI defaults
#: fail when calibrated steps/sec drops below this fraction of the snapshot
REGRESSION_FLOOR = 0.7
BASELINE_PATH = os.path.join(os.path.dirname(__file__), "BENCH_streaming.json")
TITLE = "E-STREAM  open-system throughput — poisson stream at fixed λ"
FRONTIER_TITLE = "E-STREAM  frontier bisection — probe budget per scheduler"

FRONTIER_KW = dict(lam_min=0.1, lam_max=2.0, rounds=3, until=200, warmup=50)
FRONTIER_SCHEDULERS = ["fifo", "greedy"]


def _run(n, lam, until, probe=None):
    g = topologies.clique(n)
    wl = PoissonOpenWorkload(g, lam, num_objects=max(4, n // 2), k=2, seed=0)
    sim = Simulator(g, GreedyScheduler(uniform_beta=1), wl, probe=probe)
    return sim.run(until=until, warmup=until // WARMUP_FRACTION)


def _measure(n, lam, until, repeats=3):
    """(steps, slo, best wall seconds) for one sweep point."""
    probe = CountersProbe()
    trace = _run(n, lam, until, probe=probe)
    steps = probe.counters["steps"]
    slo = slo_summary(trace)
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        _run(n, lam, until)
        best = min(best, time.perf_counter() - t0)
    return steps, slo, best


def _calibrate(n=150_000, repeats=3):
    """ops/sec of a fixed heap push/pop workload (machine speed proxy)."""
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        h = []
        for i in range(n):
            heapq.heappush(h, (i * 2654435761) % 1000003)
        while h:
            heapq.heappop(h)
        best = min(best, time.perf_counter() - t0)
    return 2 * n / best


def _committed(title, key):
    """``extra[key]`` of the snapshot table called ``title``, or None."""
    try:
        with open(BASELINE_PATH) as fh:
            doc = json.load(fh)
    except (OSError, ValueError):
        return None
    for table in doc.get("tables", []):
        if table.get("title") == title:
            return (table.get("extra") or {}).get(key)
    return None


@pytest.mark.benchmark(group="E-STREAM-throughput")
def test_stream_throughput_no_regression(benchmark):
    baseline = _committed(TITLE, "calibrated")
    cal = _calibrate()
    rows = []
    steps_per_sec = {}
    calibrated = {}
    for n, lam, until in SWEEP:
        steps, slo, secs = _measure(n, lam, until)
        rate = steps / secs
        key = f"clique:{n}@{lam}"
        steps_per_sec[key] = round(rate, 1)
        calibrated[key] = round(rate / cal, 6)
        base = (baseline or {}).get(key)
        rows.append([
            key, until, slo.committed, slo.backlog,
            "yes" if slo.stable else "NO",
            steps, round(secs * 1e3, 1), round(rate, 1),
            round(calibrated[key] / base, 2) if base else "-",
        ])
    once(benchmark, lambda: _run(*SWEEP[0]))
    emit(
        TITLE,
        ["stream", "until", "committed", "backlog", "stable",
         "steps", "best_ms", "steps/s", "vs_base"],
        rows,
        extra={"steps_per_sec": steps_per_sec, "calibrated": calibrated,
               "calibration_ops": round(cal, 1), "sweep": SWEEP,
               "regression_floor": REGRESSION_FLOOR},
    )
    if baseline:
        for key, rate in calibrated.items():
            base = baseline.get(key)
            assert base is None or rate >= REGRESSION_FLOOR * base, (
                f"{key}: calibrated throughput {rate:.4f} < "
                f"{REGRESSION_FLOOR:.0%} of committed baseline {base:.4f}"
            )


@pytest.mark.benchmark(group="E-STREAM-frontier")
def test_frontier_probe_budget(benchmark):
    committed_probes = _committed(FRONTIER_TITLE, "probes")
    wl = WorkloadSpec.make("poisson-open", seed=0)
    result = once(benchmark, lambda: stability_frontier(
        "clique:8", FRONTIER_SCHEDULERS, wl, **FRONTIER_KW))
    probes = {s.scheduler: len(s.probes) for s in result.schedulers}
    rows = [
        [s.scheduler, round(s.lambda_star, 4), len(s.probes),
         round(s.stable_slo["p50"], 1) if s.stable_slo else "-",
         round(s.stable_slo["p99"], 1) if s.stable_slo else "-"]
        for s in result.schedulers
    ]
    emit(
        FRONTIER_TITLE,
        ["scheduler", "λ*", "probes", "p50", "p99"],
        rows,
        extra={"probes": probes, "params": FRONTIER_KW,
               "lambda_star": {s.scheduler: s.lambda_star
                               for s in result.schedulers}},
    )
    # The bisection is deterministic: a probe-count drift means the search
    # or the stability verdict changed, which a PR must own up to.
    if committed_probes:
        assert probes == committed_probes, (
            f"frontier probe budget drifted: {probes} != committed "
            f"{committed_probes}"
        )
