"""E11 — Ablations of the bucket scheduler's design choices.

1. Offline-order ablation: topology-aware coloring orders (line sweep /
   clique bands / ray bands) vs arbitrary arrival order — the quality gap
   the Busch et al. [4] substrate buys.
2. Activation alignment: global multiples of 2**i (paper) vs rate-limited
   activation.
3. Departure policy: eager forwarding (paper) vs lazy just-in-time
   departure — how much the in-transit penalty costs later arrivals.
"""

import pytest

from _util import emit, once
from repro._types import DeparturePolicy
from repro.analysis import run_experiment
from repro.core import BucketScheduler, GreedyScheduler
from repro.network import topologies
from repro.offline import (
    ClusterBatchScheduler,
    ColoringBatchScheduler,
    LineBatchScheduler,
    StarBatchScheduler,
)
from repro.workloads import OnlineWorkload, hotspot_workload
from repro.sim import SimConfig


@pytest.mark.benchmark(group="E11-ablation")
def test_e11_offline_order_ablation(benchmark):
    rows = []
    cases = [
        ("line-48", topologies.line(48), LineBatchScheduler()),
        ("cluster-4x6", topologies.cluster_graph(4, 6, gamma=8), ClusterBatchScheduler()),
        ("star-6x6", topologies.star_graph(6, 6), StarBatchScheduler()),
    ]
    for name, g, aware in cases:
        # shuffle: arrival order must not coincide with the aware order
        wl = hotspot_workload(g, seed=0, shuffle=True)
        res_aware = run_experiment(g, BucketScheduler(aware), wl)
        wl = hotspot_workload(g, seed=0, shuffle=True)
        res_naive = run_experiment(g, BucketScheduler(ColoringBatchScheduler("arrival")), wl)
        gain = res_naive.makespan / max(1, res_aware.makespan)
        rows.append([name, res_aware.makespan, res_naive.makespan, round(gain, 2)])
        # topology-aware ordering must not be worse on its home topology
        assert res_aware.makespan <= res_naive.makespan * 1.05
    once(benchmark, lambda: run_experiment(
        cases[0][1], BucketScheduler(LineBatchScheduler()), hotspot_workload(cases[0][1], seed=1)
    ))
    emit(
        "E11a offline-order ablation — topology-aware vs arrival-order coloring (hotspot)",
        ["topology", "aware-makespan", "naive-makespan", "gain"],
        rows,
    )


@pytest.mark.benchmark(group="E11-ablation")
def test_e11_alignment_ablation(benchmark):
    rows = []
    for n in (24, 48):
        g = topologies.line(n)
        mk = lambda: OnlineWorkload.bernoulli(
            g, num_objects=6, k=2, rate=1.0 / n, horizon=3 * n, seed=5
        )
        aligned = run_experiment(g, BucketScheduler(LineBatchScheduler(), align=True), mk())
        rate_ltd = run_experiment(g, BucketScheduler(LineBatchScheduler(), align=False), mk())
        rows.append(
            [n, aligned.makespan, rate_ltd.makespan,
             round(aligned.metrics.mean_latency, 1), round(rate_ltd.metrics.mean_latency, 1)]
        )
    once(benchmark, lambda: run_experiment(
        topologies.line(24),
        BucketScheduler(LineBatchScheduler(), align=False),
        OnlineWorkload.bernoulli(topologies.line(24), 6, 2, rate=1 / 24, horizon=72, seed=6),
    ))
    emit(
        "E11b activation ablation — aligned (paper) vs rate-limited buckets",
        ["n", "aligned-mk", "ratelim-mk", "aligned-meanlat", "ratelim-meanlat"],
        rows,
    )


@pytest.mark.benchmark(group="E11-ablation")
def test_e11_departure_policy_ablation(benchmark):
    rows = []
    for name, g in [("line-32", topologies.line(32)), ("grid-5x5", topologies.grid([5, 5]))]:
        mk = lambda: OnlineWorkload.bernoulli(
            g, num_objects=6, k=2, rate=1.0 / g.num_nodes, horizon=60, seed=7
        )
        eager = run_experiment(g, GreedyScheduler(), mk())
        lazy = run_experiment(
            g, GreedyScheduler(), mk(),
            config=SimConfig(departure_policy=DeparturePolicy.LAZY),
        )
        rows.append(
            [name, eager.makespan, lazy.makespan,
             eager.metrics.total_object_travel, lazy.metrics.total_object_travel]
        )
    once(benchmark, lambda: run_experiment(
        topologies.line(32), GreedyScheduler(),
        OnlineWorkload.bernoulli(topologies.line(32), 6, 2, rate=1 / 32, horizon=60, seed=8),
        config=SimConfig(departure_policy=DeparturePolicy.LAZY),
    ))
    emit(
        "E11c departure ablation — eager (paper) vs lazy forwarding",
        ["topology", "eager-mk", "lazy-mk", "eager-travel", "lazy-travel"],
        rows,
    )
