"""Benchmark session setup: start each session with a fresh results file."""

import os

import pytest

from _util import RESULTS_PATH


def pytest_sessionstart(session):
    if os.path.exists(RESULTS_PATH):
        os.remove(RESULTS_PATH)
