"""E-CKPT — checkpoint/restore cost (`repro.durability`) on a long run.

Not a paper experiment: a guard-rail for the durability layer.  A
checkpoint serializes the whole engine, and that payload grows with run
history — late in a long run one synchronous snapshot costs hundreds of
milliseconds, so a tight cadence would dominate the run.  Async mode
(``SimConfig(checkpoint_sync=False)``) forks at the step boundary and
lets a detached child serialize the copy-on-write image instead: the
step loop pays only the fork, a cost set by the process's page tables,
not by how much history the run has accumulated.

The bench reports both writers' **stall** — wall-clock the step loop
loses per snapshot, measured around explicit ``checkpoint()`` calls at
a long-run cadence — and guards the async stall at < 5% of the run's
compute (``STALL_BUDGET_PCT``).  The stall is the machine-independent
quantity: a wall-clock A/B of whole runs would also charge the child's
serialization CPU to the run on single-core hosts, which is exactly the
sharing async mode is allowed to do.  End-to-end wall-clock overheads
for both modes are reported alongside for the record, unguarded.

Correctness rides along: the async-checkpointed run's trace must be
byte-identical to the baseline's, and a mid-run async snapshot must
restore and resume to that same trace.
"""

import json
import os
import shutil
import tempfile
import time

import pytest

from _util import emit, once
from repro.core import GreedyScheduler
from repro.network import topologies
from repro.sim import SimConfig, Simulator
from repro.sim.serialize import trace_to_dict
from repro.workloads import OnlineWorkload

#: dense clique run: ~5000 active steps, payload in the MB range by the end
N, HORIZON = 32, 5000
#: long-run cadence: snapshot every this many active steps
EVERY = 1000
#: async stall budget as a percentage of the baseline run's wall-clock
STALL_BUDGET_PCT = 5.0
TITLE = "E-CKPT  checkpoint stall + overhead — clique:32, 5k-step run"


def _build(ck=None, every=None, sync=True):
    g = topologies.clique(N)
    wl = OnlineWorkload.bernoulli(
        g, num_objects=16, k=2, rate=0.2, horizon=HORIZON, seed=0
    )
    cfg = SimConfig(
        checkpoint_path=ck, checkpoint_every=every, checkpoint_sync=sync
    )
    return Simulator(g, GreedyScheduler(uniform_beta=1), wl, config=cfg)


def _canon(trace) -> str:
    return json.dumps(trace_to_dict(trace), sort_keys=True)


def _timed_run(repeats=2, **kw):
    """(best wall seconds, canonical trace) of a full run."""
    best, canon = float("inf"), None
    for _ in range(repeats):
        sim = _build(**kw)
        t0 = time.perf_counter()
        trace = sim.run()
        best = min(best, time.perf_counter() - t0)
        canon = _canon(trace)
    return best, canon


def _stalls(workdir, sync, repeats=2):
    """Per-snapshot step-loop stall at the ``EVERY`` cadence (seconds).

    Drives the run in ``EVERY``-step windows and times the explicit
    ``checkpoint()`` call between them — the exact work the periodic
    path inserts into the step loop.  The runs are deterministic, so the
    elementwise best over ``repeats`` passes is the real cost with
    scheduler/page-cache noise removed.
    """
    tag = "sync" if sync else "async"
    best = [float("inf")] * (HORIZON // EVERY)
    for r in range(repeats):
        sim = _build()
        for i, t in enumerate(range(EVERY, HORIZON + 1, EVERY)):
            sim.run_until(t)
            path = os.path.join(workdir, f"stall-{tag}-{r}-{{step}}.bin")
            t0 = time.perf_counter()
            sim.checkpoint(path, sync=sync)
            best[i] = min(best[i], time.perf_counter() - t0)
        sim.run()
    if not sync:
        from repro.durability import reap_async_writers

        reap_async_writers(block=True)  # don't contaminate later timings
    return best


def _await_files(paths):
    from repro.durability import reap_async_writers

    reap_async_writers(block=True)
    missing = [p for p in paths if not os.path.exists(p)]
    assert not missing, f"async snapshots never landed: {missing}"


@pytest.mark.benchmark(group="E-CKPT")
def test_checkpoint_stall_and_overhead(benchmark):
    workdir = tempfile.mkdtemp(prefix="bench-ckpt-")
    try:
        base_s, base_canon = _timed_run()
        sync_stalls = _stalls(workdir, sync=True)
        async_stalls = _stalls(workdir, sync=False)

        # End-to-end A/B for the record (child CPU included on 1-core hosts).
        ck_sync = os.path.join(workdir, "auto-sync-{step}.bin")
        sync_s, sync_canon = _timed_run(ck=ck_sync, every=EVERY)
        ck_async = os.path.join(workdir, "auto-async-{step}.bin")
        async_s, async_canon = _timed_run(
            repeats=1, ck=ck_async, every=EVERY, sync=False
        )

        assert sync_canon == base_canon, "sync-checkpointed run diverged"
        assert async_canon == base_canon, "async-checkpointed run diverged"
        snaps = [
            ck_async.format(step=s) for s in range(EVERY, HORIZON + 1, EVERY)
        ]
        _await_files(snaps)
        resumed = Simulator.restore(snaps[len(snaps) // 2])
        assert _canon(resumed.run()) == base_canon, (
            "resume from an async snapshot diverged"
        )
        payload_mb = max(os.path.getsize(p) for p in snaps) / 1e6

        once(benchmark, lambda: _build().run())

        def pct(stalls):
            return 100.0 * sum(stalls) / base_s

        rows = [
            ["baseline (no checkpoints)", round(base_s * 1e3, 1), "-", "-"],
            ["sync,  every=1000", round(sync_s * 1e3, 1),
             round(max(sync_stalls) * 1e3, 1), round(pct(sync_stalls), 1)],
            ["async, every=1000", round(async_s * 1e3, 1),
             round(max(async_stalls) * 1e3, 1), round(pct(async_stalls), 1)],
        ]
        emit(
            TITLE,
            ["mode", "run_ms", "max_stall_ms", "stall_pct"],
            rows,
            extra={
                "every": EVERY,
                "horizon": HORIZON,
                "payload_mb": round(payload_mb, 2),
                "stall_pct": {
                    "sync": round(pct(sync_stalls), 2),
                    "async": round(pct(async_stalls), 2),
                },
                "overhead_pct": {
                    "sync": round(100.0 * (sync_s - base_s) / base_s, 1),
                    "async": round(100.0 * (async_s - base_s) / base_s, 1),
                },
                "stall_budget_pct": STALL_BUDGET_PCT,
            },
        )
        assert pct(async_stalls) < STALL_BUDGET_PCT, (
            f"async checkpoint stall {pct(async_stalls):.2f}% of run "
            f"wall-clock exceeds the {STALL_BUDGET_PCT}% budget"
        )
    finally:
        shutil.rmtree(workdir, ignore_errors=True)
