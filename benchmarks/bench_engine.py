"""E-ENGINE — raw engine throughput (steps/sec) on a dense clique sweep.

Not a paper experiment: a guard-rail for the simulator itself.  The
layered-kernel refactor (event spine + transport strategies) must not pay
for its structure with throughput, so this bench times probe-less runs of
a dense Bernoulli clique workload (nearly every step active — the engine's
worst case) and compares steps/sec against the committed
``BENCH_engine.json`` snapshot, failing on a >30% regression.

Steps are counted in a separate, untimed probed run (the workloads are
deterministic, so the counts match); the timed runs carry no probe.

Raw steps/sec is machine-dependent (CI runners, laptop thermal state),
so the guard compares *calibrated* throughput: steps/sec divided by the
ops/sec of a fixed pure-Python heap workload measured in the same
session.  CPU-speed differences cancel; only engine-code regressions
move the ratio.
"""

import heapq
import json
import os
import time

import pytest

from _util import emit, once
from repro.core import GreedyScheduler
from repro.network import topologies
from repro.obs import CountersProbe
from repro.sim import Simulator
from repro.workloads import OnlineWorkload

#: (clique size, horizon): ~2000-2600 txns each, nearly every step active.
SWEEP = [(16, 600), (32, 400), (64, 200)]
#: fail when steps/sec drops below this fraction of the committed snapshot
REGRESSION_FLOOR = 0.7
BASELINE_PATH = os.path.join(os.path.dirname(__file__), "BENCH_engine.json")
TITLE = "E-ENGINE  kernel throughput — dense bernoulli clique sweep"

#: oracle-path scale sweep at n = 1k / 10k / 100k: (spec, builder, horizon,
#: bernoulli rate) tuned to ~300 txns each so the points are comparable.
SCALE_SWEEP = [
    ("clique:1024", lambda: topologies.clique(1024), 30, 0.01),
    ("grid:100x100", lambda: topologies.grid([100, 100]), 15, 0.002),
    ("torus:100x100x10", lambda: topologies.torus([100, 100, 10]), 10, 0.0003),
]
#: the oracle path must beat the stripped (Dijkstra-fallback) path by at
#: least this factor on clique:1024 — the refactor's headline claim.
SPEEDUP_FLOOR = 5.0
SCALE_TITLE = "E-ENGINE-SCALE  oracle kernel — n=1k/10k/100k sweep"
SCALE_SCHEMA = "repro.bench-engine-scale/1"


def _build(n, horizon):
    g = topologies.clique(n)
    wl = OnlineWorkload.bernoulli(
        g, num_objects=max(4, n // 2), k=2, rate=0.2, horizon=horizon, seed=0
    )
    return g, wl


def _run(n, horizon, probe=None):
    g, wl = _build(n, horizon)
    return Simulator(g, GreedyScheduler(uniform_beta=1), wl, probe=probe).run()


def _measure(n, horizon, repeats=3):
    """(steps, txns, best wall seconds) for one sweep point."""
    probe = CountersProbe()
    trace = _run(n, horizon, probe=probe)
    steps = probe.counters["steps"]
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        _run(n, horizon)
        best = min(best, time.perf_counter() - t0)
    return steps, len(trace.txns), best


def _calibrate(n=150_000, repeats=3):
    """ops/sec of a fixed heap push/pop workload (machine speed proxy)."""
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        h = []
        for i in range(n):
            heapq.heappush(h, (i * 2654435761) % 1000003)
        while h:
            heapq.heappop(h)
        best = min(best, time.perf_counter() - t0)
    return 2 * n / best


def _committed_baseline():
    """title -> {config: calibrated steps-per-heap-op} from the snapshot."""
    try:
        with open(BASELINE_PATH) as fh:
            doc = json.load(fh)
    except (OSError, ValueError):
        return None
    for table in doc.get("tables", []):
        if table.get("title") == TITLE:
            return (table.get("extra") or {}).get("calibrated")
    return None


@pytest.mark.benchmark(group="E-ENGINE-throughput")
def test_engine_throughput_no_regression(benchmark):
    baseline = _committed_baseline()
    cal = _calibrate()
    rows = []
    steps_per_sec = {}
    calibrated = {}
    for n, horizon in SWEEP:
        steps, txns, secs = _measure(n, horizon)
        rate = steps / secs
        key = f"clique:{n}"
        steps_per_sec[key] = round(rate, 1)
        calibrated[key] = round(rate / cal, 6)
        base = (baseline or {}).get(key)
        rows.append([
            key, horizon, txns, steps, round(secs * 1e3, 1), round(rate, 1),
            round(calibrated[key] / base, 2) if base else "-",
        ])
    # One representative timed point for the pytest-benchmark record.
    once(benchmark, lambda: _run(32, 400))
    emit(
        TITLE,
        ["graph", "horizon", "txns", "steps", "best_ms", "steps/s", "vs_base"],
        rows,
        extra={"steps_per_sec": steps_per_sec, "calibrated": calibrated,
               "calibration_ops": round(cal, 1), "sweep": SWEEP,
               "regression_floor": REGRESSION_FLOOR},
    )
    if baseline:
        for key, rate in calibrated.items():
            base = baseline.get(key)
            assert base is None or rate >= REGRESSION_FLOOR * base, (
                f"{key}: calibrated throughput {rate:.4f} < "
                f"{REGRESSION_FLOOR:.0%} of committed baseline {base:.4f}"
            )


def _scale_point(builder, horizon, rate, strip_oracle=False, probe=None):
    """One timed run at scale; timing covers ``run()`` only, not setup."""
    g = builder()
    if strip_oracle:
        g.oracle = None  # force the cached-Dijkstra fallback path
    wl = OnlineWorkload.bernoulli(
        g, num_objects=64, k=2, rate=rate, horizon=horizon, seed=0
    )
    sim = Simulator(g, GreedyScheduler(uniform_beta=1), wl, probe=probe)
    t0 = time.perf_counter()
    trace = sim.run()
    return g, trace, time.perf_counter() - t0


@pytest.mark.benchmark(group="E-ENGINE-scale")
def test_engine_scale_sweep(benchmark):
    """Huge-topology sweep on the oracle path plus the ≥5x headline guard.

    Each point runs a low-rate Bernoulli workload under the greedy
    scheduler; the oracle path must leave the Dijkstra row cache empty,
    and the clique:1024 point re-run with the oracle stripped must be at
    least ``SPEEDUP_FLOOR`` times slower — the speedup is structural
    (O(1) vs O(n log n) per distance source), so the guard is
    machine-independent.
    """
    rows = []
    steps_per_sec = {}
    for spec, builder, horizon, rate in SCALE_SWEEP:
        probe = CountersProbe()
        g, trace, _ = _scale_point(builder, horizon, rate, probe=probe)
        assert not g._dist, f"{spec}: oracle run materialised Dijkstra rows"
        steps = probe.counters["steps"]
        best = float("inf")
        for _ in range(3):
            _, _, secs = _scale_point(builder, horizon, rate)
            best = min(best, secs)
        sps = steps / best
        steps_per_sec[spec] = round(sps, 1)
        rows.append([
            spec, g.num_nodes, horizon, len(trace.txns), steps,
            round(best * 1e3, 1), round(sps, 1),
        ])
    # Headline comparison: same clique:1024 workload with and without the
    # oracle.  Traces are byte-identical (the oracle IS Dijkstra on these
    # graphs), so the time ratio is a pure kernel-speed ratio.
    _, _, fast = _scale_point(*SCALE_SWEEP[0][1:], strip_oracle=False)
    g_slow, _, slow = _scale_point(*SCALE_SWEEP[0][1:], strip_oracle=True)
    assert g_slow._dist, "stripped run never hit the Dijkstra fallback"
    speedup = slow / fast
    once(benchmark, lambda: _scale_point(*SCALE_SWEEP[1][1:]))
    emit(
        SCALE_TITLE,
        ["graph", "nodes", "horizon", "txns", "steps", "best_ms", "steps/s"],
        rows,
        extra={
            "schema": SCALE_SCHEMA,
            "steps_per_sec": steps_per_sec,
            "oracle_speedup_clique1024": round(speedup, 1),
            "speedup_floor": SPEEDUP_FLOOR,
            "dijkstra_rows_built": len(g_slow._dist),
        },
    )
    assert speedup >= SPEEDUP_FLOOR, (
        f"oracle path only {speedup:.1f}x faster than the Dijkstra "
        f"fallback on clique:1024 (floor {SPEEDUP_FLOOR}x)"
    )
