"""E-ENGINE — raw engine throughput (steps/sec) on a dense clique sweep.

Not a paper experiment: a guard-rail for the simulator itself.  The
layered-kernel refactor (event spine + transport strategies) must not pay
for its structure with throughput, so this bench times probe-less runs of
a dense Bernoulli clique workload (nearly every step active — the engine's
worst case) and compares steps/sec against the committed
``BENCH_engine.json`` snapshot, failing on a >30% regression.

Steps are counted in a separate, untimed probed run (the workloads are
deterministic, so the counts match); the timed runs carry no probe.

Raw steps/sec is machine-dependent (CI runners, laptop thermal state),
so the guard compares *calibrated* throughput: steps/sec divided by the
ops/sec of a fixed pure-Python heap workload measured in the same
session.  CPU-speed differences cancel; only engine-code regressions
move the ratio.
"""

import heapq
import json
import os
import time

import pytest

from _util import emit, once
from repro.core import GreedyScheduler
from repro.network import topologies
from repro.obs import CountersProbe
from repro.sim import Simulator
from repro.workloads import OnlineWorkload

#: (clique size, horizon): ~2000-2600 txns each, nearly every step active.
SWEEP = [(16, 600), (32, 400), (64, 200)]
#: fail when steps/sec drops below this fraction of the committed snapshot
REGRESSION_FLOOR = 0.7
BASELINE_PATH = os.path.join(os.path.dirname(__file__), "BENCH_engine.json")
TITLE = "E-ENGINE  kernel throughput — dense bernoulli clique sweep"


def _build(n, horizon):
    g = topologies.clique(n)
    wl = OnlineWorkload.bernoulli(
        g, num_objects=max(4, n // 2), k=2, rate=0.2, horizon=horizon, seed=0
    )
    return g, wl


def _run(n, horizon, probe=None):
    g, wl = _build(n, horizon)
    return Simulator(g, GreedyScheduler(uniform_beta=1), wl, probe=probe).run()


def _measure(n, horizon, repeats=3):
    """(steps, txns, best wall seconds) for one sweep point."""
    probe = CountersProbe()
    trace = _run(n, horizon, probe=probe)
    steps = probe.counters["steps"]
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        _run(n, horizon)
        best = min(best, time.perf_counter() - t0)
    return steps, len(trace.txns), best


def _calibrate(n=150_000, repeats=3):
    """ops/sec of a fixed heap push/pop workload (machine speed proxy)."""
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        h = []
        for i in range(n):
            heapq.heappush(h, (i * 2654435761) % 1000003)
        while h:
            heapq.heappop(h)
        best = min(best, time.perf_counter() - t0)
    return 2 * n / best


def _committed_baseline():
    """title -> {config: calibrated steps-per-heap-op} from the snapshot."""
    try:
        with open(BASELINE_PATH) as fh:
            doc = json.load(fh)
    except (OSError, ValueError):
        return None
    for table in doc.get("tables", []):
        if table.get("title") == TITLE:
            return (table.get("extra") or {}).get("calibrated")
    return None


@pytest.mark.benchmark(group="E-ENGINE-throughput")
def test_engine_throughput_no_regression(benchmark):
    baseline = _committed_baseline()
    cal = _calibrate()
    rows = []
    steps_per_sec = {}
    calibrated = {}
    for n, horizon in SWEEP:
        steps, txns, secs = _measure(n, horizon)
        rate = steps / secs
        key = f"clique:{n}"
        steps_per_sec[key] = round(rate, 1)
        calibrated[key] = round(rate / cal, 6)
        base = (baseline or {}).get(key)
        rows.append([
            key, horizon, txns, steps, round(secs * 1e3, 1), round(rate, 1),
            round(calibrated[key] / base, 2) if base else "-",
        ])
    # One representative timed point for the pytest-benchmark record.
    once(benchmark, lambda: _run(32, 400))
    emit(
        TITLE,
        ["graph", "horizon", "txns", "steps", "best_ms", "steps/s", "vs_base"],
        rows,
        extra={"steps_per_sec": steps_per_sec, "calibrated": calibrated,
               "calibration_ops": round(cal, 1), "sweep": SWEEP,
               "regression_floor": REGRESSION_FLOOR},
    )
    if baseline:
        for key, rate in calibrated.items():
            base = baseline.get(key)
            assert base is None or rate >= REGRESSION_FLOOR * base, (
                f"{key}: calibrated throughput {rate:.4f} < "
                f"{REGRESSION_FLOOR:.0%} of committed baseline {base:.4f}"
            )
