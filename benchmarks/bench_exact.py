"""E23 — True competitive ratios on small instances (exact solver).

Everywhere else, competitive ratios divide by a certified *lower bound*;
here, on instances small enough for branch-and-bound, we divide by the
*exact* offline optimum.  Two things are measured:

1. the true competitive ratios of greedy on the clique (Theorem 3's
   regime) — they should sit below the LB-based estimates;
2. the looseness of the object-MST lower bound itself (optimal / LB).
"""

import pytest

from _util import emit, once
from repro.analysis import exact_ratio, replicate, run_experiment
from repro.core import GreedyScheduler
from repro.network import topologies
from repro.sim.transactions import Transaction
from repro.workloads import BatchWorkload


def one_instance(graph, k, seed):
    wl = BatchWorkload.uniform(
        graph, num_objects=4, k=k, seed=seed, num_txns=min(8, graph.num_nodes)
    )
    txns = [
        Transaction(i, s.home, frozenset(s.objects), s.gen_time)
        for i, s in enumerate(wl.arrivals())
    ]
    res = run_experiment(graph, GreedyScheduler(uniform_beta=1), wl, compute_ratios=False)
    return exact_ratio(graph, wl.initial_objects(), txns, res.makespan)


@pytest.mark.benchmark(group="E23-exact")
def test_e23_true_ratios_clique(benchmark):
    rows = []
    for k in (1, 2, 3):
        g = topologies.clique(10)

        def exp(seed, k=k, g=g):
            true_r, lb_r, opt, lb = one_instance(g, k, seed)
            return {"true": true_r, "lb_based": lb_r, "lb_gap": opt / max(1, lb)}

        agg = replicate(exp, seeds=range(10))
        rows.append(
            [
                k,
                round(agg["true"].mean, 2),
                round(agg["true"].max, 2),
                round(agg["lb_based"].mean, 2),
                round(agg["lb_gap"].mean, 2),
            ]
        )
        # the LB-based estimate must never be below the true ratio
        assert agg["lb_based"].mean >= agg["true"].mean - 1e-9
        # Theorem 3: true ratio O(k) with a small constant on random batches
        assert agg["true"].max <= 2 * k + 2
    once(benchmark, lambda: one_instance(topologies.clique(10), 2, 99))
    emit(
        "E23 exact optimum (clique-10, 8 txns, 10 seeds) — true vs LB-based ratios",
        ["k", "true-ratio mean", "true max", "LB-ratio mean", "opt/LB (looseness)"],
        rows,
    )


@pytest.mark.benchmark(group="E23-exact")
def test_e23_lb_looseness_by_topology(benchmark):
    rows = []
    for name, g in [
        ("clique-8", topologies.clique(8)),
        ("line-8", topologies.line(8)),
        ("grid-2x4", topologies.grid([2, 4])),
        ("star-2x3", topologies.star_graph(2, 3)),
    ]:
        def exp(seed, g=g):
            _, _, opt, lb = one_instance(g, 2, seed)
            return {"gap": opt / max(1, lb)}

        agg = replicate(exp, seeds=range(10))
        rows.append([name, round(agg["gap"].mean, 2), round(agg["gap"].max, 2)])
        assert agg["gap"].mean >= 1.0 - 1e-9  # LB really is a lower bound
    once(benchmark, lambda: one_instance(topologies.line(8), 2, 42))
    emit(
        "E23b object-MST lower-bound looseness (optimal / LB)",
        ["topology", "mean", "max"],
        rows,
    )
