"""E7 — Theorem 4 on the star graph: bucket conversion of the ray-banded
batch scheduler is O(log beta * min(k*beta, ...) * log^3 n) competitive.
"""

import pytest

from _util import emit, log2, once
from repro.analysis import run_experiment
from repro.core import BucketScheduler
from repro.network import topologies
from repro.offline import StarBatchScheduler
from repro.workloads import OnlineWorkload


def run_star(alpha, beta, k, seed=0):
    g = topologies.star_graph(alpha, beta)
    n = g.num_nodes
    wl = OnlineWorkload.bernoulli(
        g, num_objects=max(4, n // 3), k=k, rate=1.0 / n, horizon=6 * beta, seed=seed
    )
    res = run_experiment(g, BucketScheduler(StarBatchScheduler()), wl)
    return g, res


@pytest.mark.benchmark(group="E7-star")
def test_e7_star_bound_shape(benchmark):
    rows = []
    for alpha, beta in [(4, 4), (4, 8), (8, 4), (8, 8)]:
        for k in (1, 2, 4):
            g, res = run_star(alpha, beta, k)
            n = g.num_nodes
            r = res.competitive_ratio
            bound = log2(beta) * min(k * beta, n) * log2(n) ** 3
            rows.append(
                [f"a={alpha},b={beta}", n, k, res.metrics.num_txns,
                 res.makespan, round(r, 2), round(r / bound, 4)]
            )
            assert r <= bound, f"star {alpha}x{beta} k={k}: {r} > {bound}"
    once(benchmark, lambda: run_star(4, 8, 2, seed=1))
    emit(
        "E7  Theorem 4 + star — ratio within O(log b * min(k*b,.) * log^3 n)",
        ["star", "n", "k", "txns", "makespan", "ratio", "ratio/bound"],
        rows,
    )
