#!/usr/bin/env python
"""Quickstart: schedule transactions on a clique with the online greedy
scheduler (Algorithm 1 of the paper).

Run:  python examples/quickstart.py
"""

from repro import GreedyScheduler, Simulator, certify_trace, topologies
from repro.analysis import competitive_ratio, summarize
from repro.workloads import BatchWorkload


def main() -> None:
    # A 16-node complete graph: every pair of nodes one hop apart.
    graph = topologies.clique(16)

    # One transaction per node, each requesting 2 of 8 shared objects
    # placed uniformly at random (the batch problem of Busch et al.).
    workload = BatchWorkload.uniform(graph, num_objects=8, k=2, seed=42)

    # Algorithm 1: each arriving transaction is immediately assigned an
    # execution time by greedy coloring of the extended dependency graph.
    sim = Simulator(graph, GreedyScheduler(uniform_beta=1), workload)
    trace = sim.run()

    # The engine already enforces feasibility; certify independently too.
    certify_trace(graph, trace)

    metrics = summarize(trace)
    ratio, _ = competitive_ratio(graph, trace)
    print(f"graph          : {graph.name}")
    print(f"transactions   : {metrics.num_txns}")
    print(f"makespan       : {metrics.makespan} steps")
    print(f"max latency    : {metrics.max_latency} steps")
    print(f"mean latency   : {metrics.mean_latency:.1f} steps")
    print(f"object travel  : {metrics.total_object_travel} step-units")
    print(f"ratio vs LB    : {ratio:.2f}  (Theorem 3 promises O(k) = O(2))")

    print("\nexecution order:")
    for rec in trace.executions_in_order():
        objs = ",".join(f"o{o}" for o in rec.objects)
        print(f"  t={rec.exec_time:>3}  txn {rec.tid:>2} @ node {rec.home:>2}  [{objs}]")


if __name__ == "__main__":
    main()
