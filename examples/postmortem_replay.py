#!/usr/bin/env python
"""Post-mortem workflow: archive a run, re-certify it, replay it under
changed conditions, and write a markdown report.

The operator story: a production DTM run looked slow.  You have its trace
archive.  (1) re-certify it, (2) regenerate its exact workload, (3) replay
the very same schedule under a congested network to see whether yesterday's
timings would have survived, (4) re-schedule the workload with a different
scheduler, and (5) produce the report your team reads.

Run:  python examples/postmortem_replay.py
"""

import os
import tempfile

from repro import GreedyScheduler, Simulator, certify_trace, topologies
from repro.analysis import run_experiment, run_report, comparison_report
from repro.core import BucketScheduler, ReplayScheduler
from repro.offline import ColoringBatchScheduler
from repro.sim.serialize import load_trace, save_trace
from repro.workloads import OnlineWorkload, ZipfChooser, workload_from_trace


def main() -> None:
    graph = topologies.cluster_graph(3, 6, gamma=9)

    # --- the "production run" we archived -----------------------------
    workload = OnlineWorkload.bernoulli(
        graph, num_objects=12, k=2, rate=0.03, horizon=80, seed=23,
        chooser=ZipfChooser(12, s=0.8),
    )
    production = run_experiment(graph, GreedyScheduler(), workload)
    archive = os.path.join(tempfile.gettempdir(), "dtm_run.json")
    save_trace(production.trace, archive)
    print(f"archived {production.trace.num_txns} transactions to {archive}")

    # --- (1) re-certify the archive ------------------------------------
    trace = load_trace(archive)
    certify_trace(graph, trace)
    print("archive re-certified: schedule was physically feasible")

    # --- (2) regenerate the workload, (3) replay under congestion ------
    replay_wl = workload_from_trace(trace)
    sim = Simulator(
        graph,
        ReplayScheduler(trace),
        replay_wl,
        hop_motion=True,
        link_capacity=1,
        strict=False,
    )
    congested = sim.run()
    print(
        f"replayed with link capacity 1: {len(congested.violations)} deadline "
        f"misses, makespan {congested.makespan()} vs {trace.makespan()} archived"
    )

    # --- (4) what-if: a guaranteed scheduler on the same workload ------
    alt = run_experiment(graph, BucketScheduler(ColoringBatchScheduler()), workload_from_trace(trace))

    # --- (5) report -----------------------------------------------------
    report = comparison_report(
        graph,
        [("greedy (production)", production), ("bucket (what-if)", alt)],
        title="Post-mortem: production run vs guaranteed scheduler",
    )
    print()
    print(report)
    detail = run_report(graph, production, title="Production run detail", gantt_width=64)
    out = os.path.join(tempfile.gettempdir(), "dtm_postmortem.md")
    with open(out, "w") as fh:
        fh.write(detail)
    print(f"full report written to {out}")


if __name__ == "__main__":
    main()
