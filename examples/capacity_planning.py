#!/usr/bin/env python
"""Capacity-planning scenario: how much link budget does a DTM need?

The paper's model assumes unbounded link capacity (Section VI names
congestion as an open question).  An operator sizing a deployment wants
to know: with the scheduler we run, what egress capacity per node keeps
the schedule on time, and what does it cost to be safe?

This example sweeps the per-node egress capacity on a 6x6 mesh under
Zipf contention, reports deadline misses and makespan inflation, and
then uses the timeline analytics to show where the pressure concentrates.

Run:  python examples/capacity_planning.py
"""

from repro import GreedyScheduler, Simulator, topologies
from repro.analysis import hottest_nodes, peak_concurrency, render_table, transit_series
from repro.workloads import OnlineWorkload, ZipfChooser


def build_workload(graph, seed=11):
    return OnlineWorkload.bernoulli(
        graph,
        num_objects=18,
        k=2,
        rate=0.03,
        horizon=80,
        seed=seed,
        chooser=ZipfChooser(18, s=1.0),
    )


def main() -> None:
    graph = topologies.grid([6, 6])

    rows = []
    baseline = None
    last_trace = None
    for cap in (None, 4, 2, 1):
        sim = Simulator(
            graph,
            GreedyScheduler(),
            build_workload(graph),
            node_egress_capacity=cap,
            strict=False,
        )
        trace = sim.run()
        if baseline is None:
            baseline = trace.makespan()
        rows.append(
            [
                "unbounded" if cap is None else cap,
                trace.num_txns,
                len(trace.violations),
                trace.makespan(),
                round(trace.makespan() / baseline, 2),
            ]
        )
        last_trace = trace

    print(render_table(
        ["egress-cap", "txns", "deadline-misses", "makespan", "inflation"],
        rows,
        title="6x6 mesh, Zipf contention: per-node egress capacity sweep",
    ))

    peak_transit = max((lvl for _, lvl in transit_series(last_trace)), default=0)
    print(f"\nat capacity 1: peak objects in flight {peak_transit}, "
          f"peak live transactions {peak_concurrency(last_trace)}")
    print("\nhottest nodes (capacity 1):")
    hot = hottest_nodes(last_trace, top=5)
    print(render_table(
        ["node", "txns", "mean-lat", "out", "in"],
        [[s.node, s.txns_executed, round(s.mean_latency, 1), s.objects_departed, s.objects_arrived]
         for s in hot],
    ))


if __name__ == "__main__":
    main()
