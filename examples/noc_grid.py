#!/usr/bin/env python
"""Network-on-chip scenario: transactional cores on an 8x8 mesh.

64 cores on a 2D mesh (a classic NoC floorplan — see the paper's Section I
motivation: multiprocessor and network-on-chip topologies).  Each core
runs a closed loop of transactions touching a Zipf-skewed set of shared
cache lines (mobile objects).  We compare the online greedy scheduler
against the FIFO-serial anchor and report latency percentiles — the
numbers an interconnect architect would look at.

Run:  python examples/noc_grid.py
"""

from repro import GreedyScheduler, Simulator, certify_trace, topologies
from repro.analysis import render_table, summarize
from repro.baselines import FifoSerialScheduler
from repro.workloads import ClosedLoopWorkload, ZipfChooser


def run(scheduler, seed=7):
    graph = topologies.grid([8, 8])
    workload = ClosedLoopWorkload(
        graph,
        num_objects=32,
        k=2,
        rounds=4,
        seed=seed,
        chooser=ZipfChooser(32, s=1.1),  # a few hot cache lines
    )
    sim = Simulator(graph, scheduler, workload)
    trace = sim.run()
    certify_trace(graph, trace)
    return summarize(trace)


def main() -> None:
    greedy = run(GreedyScheduler())
    fifo = run(FifoSerialScheduler())
    rows = [
        ["greedy (Alg.1)", greedy.num_txns, greedy.makespan, greedy.mean_latency,
         greedy.p99_latency, greedy.total_object_travel],
        ["fifo-serial", fifo.num_txns, fifo.makespan, fifo.mean_latency,
         fifo.p99_latency, fifo.total_object_travel],
    ]
    print(render_table(
        ["scheduler", "txns", "makespan", "mean-lat", "p99-lat", "line-hops"],
        rows,
        title="8x8 mesh NoC, 64 cores, Zipf cache-line contention",
    ))
    speedup = fifo.makespan / max(1, greedy.makespan)
    print(f"\ngreedy finishes the same work {speedup:.1f}x sooner than serial execution")


if __name__ == "__main__":
    main()
