#!/usr/bin/env python
"""Reproduce the paper's headline claims in one run (~1 minute).

A condensed pass over the key results (full sweeps live in benchmarks/):

  Theorem 3   clique: greedy is O(k)-competitive, flat in n
  §III-D      hypercube: O(k log n)
  Theorem 4   line: bucket conversion is O(log^3 n), k-independent
  Theorem 5   distributed bucket pays only a small overhead over central
  Lemmas 3/4  bucket levels and latencies within their allowances

Every number is measured on a schedule the independent certifier accepted,
and every ratio divides by a certified lower bound (so it upper-bounds the
true competitive ratio).

Run:  python examples/reproduce_paper.py
"""

import math

from repro import topologies
from repro.analysis import render_table, run_experiment
from repro.core import BucketScheduler, DistributedBucketScheduler, GreedyScheduler
from repro.offline import ColoringBatchScheduler, LineBatchScheduler
from repro.sim import SimConfig
from repro.workloads import ClosedLoopWorkload, OnlineWorkload

#: the distributed schedulers need objects at half speed (Theorem 5 setup)
SPEED2 = SimConfig(object_speed_den=2)


def theorem3_clique():
    rows = []
    for n in (16, 32):
        for k in (1, 2, 4):
            g = topologies.clique(n)
            wl = ClosedLoopWorkload(g, num_objects=n // 2, k=k, rounds=3, seed=42)
            res = run_experiment(g, GreedyScheduler(uniform_beta=1), wl)
            r = res.competitive_ratio
            rows.append([n, k, round(r, 2), round(r / k, 2), "OK" if r <= 8 * k + 4 else "FAIL"])
    print(render_table(
        ["n", "k", "ratio", "ratio/k", "within O(k)?"], rows,
        title="Theorem 3 — clique closed loop: ratio ~ O(k), flat in n",
    ))


def hypercube_klogn():
    rows = []
    for d in (3, 4, 5):
        g = topologies.hypercube(d)
        wl = ClosedLoopWorkload(g, num_objects=g.num_nodes // 2, k=2, rounds=2, seed=11)
        res = run_experiment(g, GreedyScheduler(), wl)
        norm = res.competitive_ratio / (2 * d)
        rows.append([d, g.num_nodes, round(res.competitive_ratio, 2), round(norm, 2),
                     "OK" if norm <= 8 else "FAIL"])
    print(render_table(
        ["d", "n", "ratio", "ratio/(k*log n)", "within O(k log n)?"], rows,
        title="Section III-D — hypercube, k=2",
    ))


def theorem4_line():
    rows = []
    for n in (32, 64):
        for k in (1, 4):
            g = topologies.line(n)
            wl = OnlineWorkload.bernoulli(
                g, num_objects=n // 4, k=k, rate=1.5 / n, horizon=3 * n, seed=7
            )
            res = run_experiment(g, BucketScheduler(LineBatchScheduler()), wl)
            norm = res.competitive_ratio / math.log2(n) ** 3
            rows.append([n, k, round(res.competitive_ratio, 2), round(norm, 3),
                         "OK" if norm <= 1.0 else "FAIL"])
    print(render_table(
        ["n", "k", "ratio", "ratio/log^3 n", "within O(log^3 n)?"], rows,
        title="Theorem 4 + line — bucket(line-sweep), k-independent",
    ))


def theorem5_distributed():
    rows = []
    for name, g, batch in [
        ("line-24", topologies.line(24), LineBatchScheduler()),
        ("grid-5x5", topologies.grid([5, 5]), ColoringBatchScheduler()),
    ]:
        mk = lambda: OnlineWorkload.bernoulli(
            g, num_objects=6, k=2, rate=0.8 / g.num_nodes, horizon=4 * g.diameter() + 20, seed=4
        )
        central = run_experiment(g, BucketScheduler(type(batch)()), mk(), config=SPEED2)
        dist = run_experiment(
            g, DistributedBucketScheduler(type(batch)(), seed=1), mk(), config=SPEED2
        )
        over = dist.makespan / max(1, central.makespan)
        rows.append([name, central.makespan, dist.makespan, round(over, 2),
                     dist.metrics.messages_sent, "OK" if over <= 8 else "FAIL"])
    print(render_table(
        ["topology", "central-mk", "dist-mk", "overhead", "messages", "poly-log?"], rows,
        title="Theorem 5 — distributed vs centralized bucket (half-speed objects)",
    ))


def lemmas_3_4():
    g = topologies.line(32)
    wl = OnlineWorkload.bernoulli(g, num_objects=8, k=2, rate=0.05, horizon=80, seed=0)
    sched = BucketScheduler(LineBatchScheduler())
    res = run_experiment(g, sched, wl)
    lemma3 = math.ceil(math.log2(g.num_nodes * g.diameter())) + 1
    level_of = {tid: lvl for tid, lvl, _ in sched.insert_log}
    t_ins = {tid: t for tid, _, t in sched.insert_log}
    worst_slack = 0.0
    for rec in res.trace.txns.values():
        i = level_of[rec.tid]
        allow = (i + 1) * 2 ** (i + 2)
        worst_slack = max(worst_slack, (rec.exec_time - t_ins[rec.tid]) / allow)
    max_level = max(level_of.values())
    print(render_table(
        ["max level", "lemma3 cap", "worst latency/allowance", "both hold?"],
        [[max_level, lemma3, round(worst_slack, 2),
          "OK" if max_level <= lemma3 and worst_slack <= 1.0 else "FAIL"]],
        title="Lemmas 3-4 — bucket levels and per-level latency (line-32)",
    ))


def main() -> None:
    print("Reproducing the paper's headline bounds (condensed; see benchmarks/ for full sweeps)\n")
    theorem3_clique()
    print()
    hypercube_klogn()
    print()
    theorem4_line()
    print()
    theorem5_distributed()
    print()
    lemmas_3_4()
    print("\nAll ratios divide by certified lower bounds; all schedules certified feasible.")


if __name__ == "__main__":
    main()
