#!/usr/bin/env python
"""Rack-scale scenario: transactional stores across racks of servers.

A cluster graph (paper Section IV-D): 4 racks ("cliques") of 8 servers,
rack-local links of weight 1, and inter-rack bridge links of weight 12
(the oversubscribed spine).  Transactions arrive online and touch shared
objects; most traffic should stay rack-local, so we use the
locality-biased object chooser.

The online bucket scheduler (Algorithm 2) converts the clique-banded
offline scheduler into an online one; we also show what the distributed
variant (Algorithm 3) pays for dropping the centralized scheduler.

Run:  python examples/datacenter_cluster.py
"""

from repro import Simulator, certify_trace, topologies
from repro.analysis import competitive_ratio, render_table, summarize
from repro.core import BucketScheduler, DistributedBucketScheduler
from repro.offline import ClusterBatchScheduler
from repro.workloads import LocalityChooser, OnlineWorkload
from repro.workloads.generators import place_objects_uniform

import numpy as np


def build_workload(graph, seed):
    rng = np.random.default_rng(seed)
    placement = place_objects_uniform(graph, 16, rng)
    chooser = LocalityChooser(graph, placement, bias=2.5)
    return OnlineWorkload.bernoulli(
        graph, num_objects=16, k=2, rate=0.02, horizon=120, seed=seed, chooser=chooser
    )


def run(graph, scheduler, *, speed=1, seed=3):
    sim = Simulator(graph, scheduler, build_workload(graph, seed), object_speed_den=speed)
    trace = sim.run()
    certify_trace(graph, trace)
    ratio, _ = competitive_ratio(graph, trace)
    return summarize(trace), ratio


def main() -> None:
    graph = topologies.cluster_graph(alpha=4, beta=8, gamma=12)
    central, r1 = run(graph, BucketScheduler(ClusterBatchScheduler()))
    # Algorithm 3 runs objects at half speed (its discovery-chase rule),
    # so compare against a half-speed centralized run for a fair baseline.
    central2, r2 = run(graph, BucketScheduler(ClusterBatchScheduler()), speed=2)
    dist, r3 = run(graph, DistributedBucketScheduler(ClusterBatchScheduler(), seed=0), speed=2)

    rows = [
        ["bucket (central)", central.num_txns, central.makespan,
         central.mean_latency, round(r1, 2), central.messages_sent],
        ["bucket (central, 1/2-speed)", central2.num_txns, central2.makespan,
         central2.mean_latency, round(r2, 2), central2.messages_sent],
        ["distributed bucket (Alg.3)", dist.num_txns, dist.makespan,
         dist.mean_latency, round(r3, 2), dist.messages_sent],
    ]
    print(render_table(
        ["scheduler", "txns", "makespan", "mean-lat", "ratio-vs-LB", "ctrl msgs"],
        rows,
        title="4 racks x 8 servers, gamma=12 spine, locality-biased transactions",
    ))
    print(
        f"\ndecentralization overhead: {dist.makespan / max(1, central2.makespan):.2f}x makespan, "
        f"{dist.messages_sent} control messages"
    )


if __name__ == "__main__":
    main()
