#!/usr/bin/env python
"""Sensor-pipeline scenario: a chain of processing stages on a line graph.

Stages 0..31 sit on a line (think a linear systolic pipeline or a chain
of edge gateways).  Each stage-i transaction consumes the window object it
shares with its predecessor and the one it shares with its successor — the
adversarial chain workload — plus online cross-traffic.  Large diameter
makes this the paper's home turf for the bucket conversion (Theorem 4:
O(log^3 n) on the line, independent of k).

Run:  python examples/line_pipeline.py
"""

from repro import GreedyScheduler, Simulator, certify_trace, topologies
from repro.analysis import competitive_ratio, render_table, summarize
from repro.core import BucketScheduler
from repro.offline import LineBatchScheduler
from repro.workloads import chain_workload, OnlineWorkload


def run(scheduler, workload_fn, graph):
    sim = Simulator(graph, scheduler, workload_fn())
    trace = sim.run()
    certify_trace(graph, trace)
    ratio, _ = competitive_ratio(graph, trace)
    return summarize(trace), ratio


def main() -> None:
    graph = topologies.line(32)

    rows = []
    for title, wl_fn in [
        ("chain (batch)", lambda: chain_workload(graph)),
        ("cross-traffic (online)", lambda: OnlineWorkload.bernoulli(
            graph, num_objects=10, k=2, rate=0.04, horizon=96, seed=11)),
    ]:
        for name, sched_fn in [
            ("bucket+line-sweep", lambda: BucketScheduler(LineBatchScheduler())),
            ("greedy", lambda: GreedyScheduler()),
        ]:
            m, r = run(sched_fn(), wl_fn, graph)
            rows.append([title, name, m.num_txns, m.makespan, m.mean_latency, round(r, 2)])

    print(render_table(
        ["workload", "scheduler", "txns", "makespan", "mean-lat", "ratio-vs-LB"],
        rows,
        title="32-stage line pipeline (Theorem 4: bucket is O(log^3 n) here)",
    ))


if __name__ == "__main__":
    main()
