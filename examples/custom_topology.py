#!/usr/bin/env python
"""Bring-your-own-topology: import a networkx graph and a custom
scheduler, and lean on the library's safety net.

Two adoption paths in one example:

1. your topology — any undirected networkx graph (here: a small fat-tree,
   the classic datacenter fabric) becomes a scheduling substrate via
   ``from_networkx``;
2. your scheduler — a custom ``OnlineScheduler`` is fuzz-tested against
   random certified instances with ``repro.testing.fuzz_scheduler``
   before being trusted on the real workload.

Run:  python examples/custom_topology.py
"""

import networkx as nx

from repro import GreedyScheduler, Simulator, certify_trace
from repro.analysis import render_table, summarize
from repro.core.base import OnlineScheduler
from repro.core.coloring import min_valid_color
from repro.core.dependency import constraints_for
from repro.network import from_networkx
from repro.testing import fuzz_scheduler
from repro.workloads import OnlineWorkload, ZipfChooser


def fat_tree(pods: int = 4) -> nx.Graph:
    """A tiny 3-tier fat-tree: core - aggregation - edge - hosts."""
    g = nx.Graph()
    cores = [f"core{i}" for i in range(pods // 2)]
    for p in range(pods):
        agg, edge = f"agg{p}", f"edge{p}"
        g.add_edge(agg, edge, weight=1)
        for c in cores:
            g.add_edge(c, agg, weight=2)  # oversubscribed up-links
        for h in range(2):
            g.add_edge(edge, f"host{p}.{h}", weight=1)
    return g


class DeferHotScheduler(OnlineScheduler):
    """A custom policy: transactions touching the currently hottest
    object get a small extra delay, smoothing bursts.  (Whether this is a
    *good* idea is exactly what the harness lets you measure.)"""

    def on_step(self, t, new_txns):
        counts = {}
        for txn in self.sim.live.values():
            for oid in txn.all_objects:
                counts[oid] = counts.get(oid, 0) + 1
        hot = max(counts, key=counts.get) if counts else None
        for txn in sorted(new_txns, key=lambda x: x.tid):
            cons = constraints_for(self.sim, txn, now=t)
            color = min_valid_color(cons)
            if hot is not None and hot in txn.all_objects:
                # politeness penalty on the hot object — note we re-run the
                # sweep with a raised floor instead of naively adding 2,
                # which could land inside another neighbour's forbidden
                # interval (the fuzz harness catches exactly that bug).
                color = min_valid_color(cons, floor=color + 2)
            self.sim.commit_schedule(txn, t + color)


def main() -> None:
    graph, mapping = from_networkx(fat_tree(), name="fat-tree(4 pods)")
    hosts = [mapping[n] for n in mapping if str(n).startswith("host")]
    print(f"imported {graph.name}: n={graph.num_nodes}, diameter={graph.diameter()}")

    # Step 1: fuzz the custom scheduler on random certified instances.
    fuzz_scheduler(DeferHotScheduler, trials=25, seed=7)
    print("DeferHotScheduler survived 25 certified fuzz instances")

    # Step 2: compare on the fat-tree under hot-object contention.
    rows = []
    for name, factory in [("greedy", GreedyScheduler), ("defer-hot", DeferHotScheduler)]:
        wl = OnlineWorkload.bernoulli(
            graph, num_objects=6, k=2, rate=0.04, horizon=60, seed=3,
            chooser=ZipfChooser(6, s=1.3),
        )
        sim = Simulator(graph, factory(), wl)
        trace = sim.run()
        certify_trace(graph, trace)
        m = summarize(trace)
        rows.append([name, m.num_txns, m.makespan, m.mean_latency, m.p99_latency])
    print()
    print(render_table(
        ["scheduler", "txns", "makespan", "mean-lat", "p99-lat"],
        rows, title="fat-tree, Zipf-hot objects",
    ))


if __name__ == "__main__":
    main()
