"""Setup shim: enables legacy editable installs (`pip install -e .`) in
offline environments whose setuptools lacks the `wheel` package required
by PEP 660 editable builds.  All metadata lives in pyproject.toml."""

from setuptools import setup

setup()
